//! A shared worker pool for deterministic data-parallel task queues.
//!
//! The Monte-Carlo engine and the world-analysis driver both follow the
//! same pattern: a *flattened*, statically indexed list of independent
//! tasks (blocks of randomized recipes, rows of an overlap matrix,
//! per-region setup jobs) whose results must be combined in **task
//! order** so the outcome is bit-identical regardless of how many
//! threads ran it. This module is that pattern, extracted:
//!
//! * work is claimed dynamically (an atomic cursor), so imbalanced
//!   tasks still load-balance;
//! * every task index is claimed by exactly one worker, which writes
//!   the result into the index's dedicated slot — no locks, no
//!   post-hoc sorting;
//! * the caller receives `Vec<T>` in task order, making the canonical
//!   merge a plain in-order fold.
//!
//! Workers can carry mutable per-worker scratch state (`init` builds
//! one per worker), which is how the samplers reuse allocation-free
//! buffers across tasks.
//!
//! # Failure model
//!
//! [`try_run`] is the fallible entry point: tasks return
//! `Result<T, E>`, task bodies are wrapped in `catch_unwind`, and the
//! first failure — error *or* panic — poisons the claim cursor so no
//! new work starts. Tasks already in flight run to completion, every
//! failure among claimed tasks is recorded, and the **lowest task
//! index** wins, so the reported [`TaskFailure`] is identical for any
//! thread count (the same determinism contract the success path has).
//! Result slots written before the failure are dropped correctly; no
//! task result leaks. [`run`] delegates to [`try_run`] with infallible
//! tasks, signatures untouched.
//!
//! # Observability
//!
//! [`run_observed`] is [`run`] plus pool telemetry through a
//! [`PoolObs`] handle (queue depth, per-worker claimed-task counts and
//! busy time). Instrumentation never influences scheduling or results,
//! and a disabled handle reduces every probe to one branch — [`run`]
//! itself delegates to [`run_observed`] with a disabled handle.

use std::any::Any;
use std::cell::UnsafeCell;
use std::convert::Infallible;
use std::fmt;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use culinaria_obs::{Counter, Gauge, Histogram, Metrics};

/// Resolve a requested thread count: `0` means "use the machine",
/// anything else is taken literally (callers cap by task count).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why a single task failed: it returned an error, or it panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind<E> {
    /// The task returned `Err(E)`.
    Failed(E),
    /// The task panicked; the payload rendered as a message.
    Panicked(String),
}

/// The structured outcome of a failed [`try_run`]: which task index
/// failed first (lowest index among all failures), and how.
///
/// Determinism: the claim cursor is monotonic, so when the task at
/// index `F` fails, every index below `F` was already claimed and runs
/// to completion; each of their failures is recorded too, and the
/// minimum index is kept. The minimum over "tasks that fail when
/// executed" does not depend on the schedule, so this value is
/// bit-identical across 1, 2, or 8 threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure<E> {
    /// Index of the lowest failing task.
    pub index: usize,
    /// How that task failed.
    pub kind: FailureKind<E>,
}

impl<E: fmt::Display> fmt::Display for TaskFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Failed(e) => write!(f, "task {} failed: {e}", self.index),
            FailureKind::Panicked(msg) => write!(f, "task {} panicked: {msg}", self.index),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for TaskFailure<E> {}

/// Render a panic payload as text (the common `&str` / `String` cases;
/// anything else gets a placeholder).
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        }
    }
}

/// One result slot per task. Safety rests on the claim protocol: an
/// index is handed to exactly one worker (atomic `fetch_add`), so each
/// cell has exactly one writer, and the scope join orders all writes
/// before the read-back.
///
/// A per-cell `written` flag arms the `Drop` impl: when a run exits
/// early (task failure or panic), only the initialized cells are
/// dropped, so partially filled result sets never leak and never touch
/// uninitialized memory.
struct Slots<T> {
    cells: Vec<UnsafeCell<MaybeUninit<T>>>,
    written: Vec<AtomicBool>,
}

// SAFETY: cells are only accessed through disjoint indices (one writer
// each, no readers until after the thread scope ends).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            written: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// # Safety
    /// `idx` must be claimed by exactly one worker, exactly once.
    unsafe fn write(&self, idx: usize, value: T) {
        (*self.cells[idx].get()).write(value);
        self.written[idx].store(true, Ordering::Release);
    }

    /// # Safety
    /// Every index must have been written exactly once.
    unsafe fn into_vec(mut self) -> Vec<T> {
        // Disarm Drop: take the cells out, clear the flags, and let the
        // emptied shell drop harmlessly.
        let cells = std::mem::take(&mut self.cells);
        self.written.clear();
        cells
            .into_iter()
            .map(|c| c.into_inner().assume_init())
            .collect()
    }
}

impl<T> Drop for Slots<T> {
    fn drop(&mut self) {
        for (cell, flag) in self.cells.iter_mut().zip(&self.written) {
            if flag.load(Ordering::Acquire) {
                // SAFETY: the flag is set only after the cell was
                // initialized, and `&mut self` proves no worker still
                // holds a reference.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Pool telemetry handles, prefetched once so workers never touch the
/// metrics registry. All pool call sites share one `pool.*` namespace:
///
/// * `pool.runs` — pool invocations (counter);
/// * `pool.tasks` — total tasks executed (counter);
/// * `pool.failures` — pool runs that returned a failure (counter);
/// * `pool.queue.depth` — task count of the most recent run (gauge);
/// * `pool.workers` — worker count of the most recent run (gauge);
/// * `pool.worker.tasks` — tasks claimed per worker per run (histogram,
///   unitless — its spread shows load balance);
/// * `pool.worker.busy_us` — per-worker wall time inside the claim loop
///   per run (histogram).
#[derive(Debug, Clone, Default)]
pub struct PoolObs {
    runs: Counter,
    tasks: Counter,
    failures: Counter,
    queue_depth: Gauge,
    workers: Gauge,
    worker_tasks: Histogram,
    worker_busy: Histogram,
    enabled: bool,
}

impl PoolObs {
    /// Register the `pool.*` instruments on `metrics` (no-op handles
    /// for a disabled registry).
    pub fn new(metrics: &Metrics) -> PoolObs {
        PoolObs {
            runs: metrics.counter("pool.runs"),
            tasks: metrics.counter("pool.tasks"),
            failures: metrics.counter("pool.failures"),
            queue_depth: metrics.gauge("pool.queue.depth"),
            workers: metrics.gauge("pool.workers"),
            worker_tasks: metrics.histogram("pool.worker.tasks"),
            worker_busy: metrics.histogram("pool.worker.busy_us"),
            enabled: metrics.is_enabled(),
        }
    }

    /// A fully inert handle — what [`run`] uses.
    pub fn disabled() -> PoolObs {
        PoolObs::default()
    }

    /// True when the probes record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Run `n_tasks` independent tasks across `n_threads` workers and
/// return their results **in task order**.
///
/// `init` builds one scratch state per worker; `task` maps
/// `(scratch, task index)` to a result. Task results do not depend on
/// which worker ran them, so as long as `task` itself is deterministic
/// per index, the returned vector is identical for every thread count —
/// the determinism contract DESIGN.md documents.
///
/// `n_threads == 0` means "use the available parallelism"; the count is
/// always capped by `n_tasks`. With one effective thread the queue runs
/// inline with no thread machinery at all.
///
/// Delegates to [`try_run`] with infallible tasks: a panicking task
/// still panics the caller (with the original message), after cleanly
/// dropping every already-computed result.
pub fn run<S, T, Init, Task>(n_threads: usize, n_tasks: usize, init: Init, task: Task) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> T + Sync,
{
    run_observed(n_threads, n_tasks, &PoolObs::disabled(), init, task)
}

/// [`run`] with pool telemetry: queue depth and worker count are set at
/// entry, and each worker records its claimed-task count and busy time
/// when its claim loop drains. The task results are identical to
/// [`run`]'s — telemetry observes the schedule, it never alters it.
///
/// Note the per-worker numbers describe *this run's actual schedule*,
/// which legitimately varies with thread count and OS timing; only the
/// task results carry the bit-identity contract.
pub fn run_observed<S, T, Init, Task>(
    n_threads: usize,
    n_tasks: usize,
    obs: &PoolObs,
    init: Init,
    task: Task,
) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> T + Sync,
{
    let result = try_run_observed(n_threads, n_tasks, obs, init, |state, i| {
        Ok::<T, Infallible>(task(state, i))
    });
    match result {
        Ok(out) => out,
        Err(failure) => match failure.kind {
            FailureKind::Failed(e) => match e {},
            FailureKind::Panicked(msg) => {
                panic!("pool task {} panicked: {msg}", failure.index)
            }
        },
    }
}

/// Fallible [`run`]: tasks return `Result<T, E>`, and the pool returns
/// either every result in task order or the **lowest-index**
/// [`TaskFailure`] (error or panic), identical for any thread count.
///
/// On failure no new tasks are claimed (the cursor is poisoned),
/// in-flight tasks finish, and every already-written result slot is
/// dropped — nothing leaks, nothing aborts.
pub fn try_run<S, T, E, Init, Task>(
    n_threads: usize,
    n_tasks: usize,
    init: Init,
    task: Task,
) -> Result<Vec<T>, TaskFailure<E>>
where
    T: Send,
    E: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    try_run_observed(n_threads, n_tasks, &PoolObs::disabled(), init, task)
}

/// [`try_run`] with pool telemetry (see [`run_observed`]); a run that
/// returns a failure additionally bumps the `pool.failures` counter.
pub fn try_run_observed<S, T, E, Init, Task>(
    n_threads: usize,
    n_tasks: usize,
    obs: &PoolObs,
    init: Init,
    task: Task,
) -> Result<Vec<T>, TaskFailure<E>>
where
    T: Send,
    E: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    if n_tasks == 0 {
        return Ok(Vec::new());
    }
    let n_threads = effective_threads(n_threads).min(n_tasks).max(1);
    obs.runs.incr();
    obs.tasks.add(n_tasks as u64);
    obs.queue_depth.set(n_tasks as i64);
    obs.workers.set(n_threads as i64);
    if n_threads == 1 {
        let timer = obs.worker_busy.start();
        let mut state = init();
        let mut out = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            match catch_unwind(AssertUnwindSafe(|| task(&mut state, i))) {
                Ok(Ok(value)) => out.push(value),
                Ok(Err(e)) => {
                    timer.stop();
                    obs.worker_tasks.record((i + 1) as u64);
                    obs.failures.incr();
                    return Err(TaskFailure {
                        index: i,
                        kind: FailureKind::Failed(e),
                    });
                }
                Err(payload) => {
                    timer.stop();
                    obs.worker_tasks.record((i + 1) as u64);
                    obs.failures.incr();
                    return Err(TaskFailure {
                        index: i,
                        kind: FailureKind::Panicked(panic_message(payload)),
                    });
                }
            }
        }
        timer.stop();
        obs.worker_tasks.record(n_tasks as u64);
        return Ok(out);
    }

    let slots = Slots::new(n_tasks);
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let failure: Mutex<Option<TaskFailure<E>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let slots = &slots;
        let cursor = &cursor;
        let poisoned = &poisoned;
        let failure = &failure;
        let init = &init;
        let task = &task;
        for _ in 0..n_threads {
            scope.spawn(move || {
                // One clock read per worker per run — nothing per task.
                let started = obs.is_enabled().then(Instant::now);
                let mut claimed = 0u64;
                let mut state = init();
                loop {
                    // The poison check gates *new* claims only; the
                    // task that set it (and any already in flight on
                    // other workers) has run to completion.
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(&mut state, i)));
                    claimed += 1;
                    let kind = match outcome {
                        Ok(Ok(value)) => {
                            // SAFETY: `i` came from the shared cursor,
                            // so this worker is its unique writer.
                            unsafe { slots.write(i, value) };
                            continue;
                        }
                        Ok(Err(e)) => FailureKind::Failed(e),
                        Err(payload) => FailureKind::Panicked(panic_message(payload)),
                    };
                    poisoned.store(true, Ordering::Relaxed);
                    let mut slot = failure.lock().unwrap_or_else(|p| p.into_inner());
                    // Lowest index wins: the cursor is monotonic, so
                    // every index below any failing one was claimed and
                    // ran; keeping the minimum makes the reported
                    // failure schedule-independent.
                    let keep = match &*slot {
                        Some(prev) => i < prev.index,
                        None => true,
                    };
                    if keep {
                        *slot = Some(TaskFailure { index: i, kind });
                    }
                    break;
                }
                if let Some(started) = started {
                    obs.worker_busy.record_duration(started.elapsed());
                    obs.worker_tasks.record(claimed);
                }
            });
        }
    });
    match failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
        Some(f) => {
            // `slots` drops here: its Drop impl frees exactly the
            // initialized cells.
            obs.failures.incr();
            Err(f)
        }
        // SAFETY: no failure was recorded, so the cursor covered
        // 0..n_tasks, the scope joined every worker, and each slot was
        // written exactly once.
        None => Ok(unsafe { slots.into_vec() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Once};

    /// Intentional test panics (messages containing "boom" or
    /// "injected") would otherwise spray backtrace noise from spawned
    /// workers into the test output; filter them at the hook while
    /// delegating everything else.
    fn quiet_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !(msg.contains("boom") || msg.contains("injected")) {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn results_in_task_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 8, 17] {
            let out = run(threads, 100, || (), |_, i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts its own tasks; the sum must equal n_tasks.
        let counts = run(
            4,
            64,
            || 0usize,
            |state, _| {
                *state += 1;
                *state
            },
        );
        // Every worker's sequence 1, 2, 3, … appears interleaved; the
        // number of 1s equals the number of workers that claimed work.
        let ones = counts.iter().filter(|&&c| c == 1).count();
        assert!((1..=4).contains(&ones), "{ones} workers participated");
        assert_eq!(counts.len(), 64);
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(run(4, 0, || (), |_, i| i), Vec::<usize>::new());
        assert_eq!(run(4, 1, || (), |_, i| i + 41), vec![41]);
    }

    #[test]
    fn heavier_than_thread_count() {
        let out = run(2, 1000, || (), |_, i| i as u64);
        assert_eq!(out.iter().sum::<u64>(), 999 * 1000 / 2);
    }

    #[test]
    fn non_copy_results() {
        let out = run(3, 10, || (), |_, i| format!("task-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("task-{i}"));
        }
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let metrics = Metrics::enabled();
        let obs = PoolObs::new(&metrics);
        for threads in [1, 2, 8] {
            let observed = run_observed(threads, 50, &obs, || (), |_, i| i * 3);
            let plain = run(threads, 50, || (), |_, i| i * 3);
            assert_eq!(observed, plain, "threads = {threads}");
        }
    }

    #[test]
    fn observed_run_records_pool_metrics() {
        let metrics = Metrics::enabled();
        let obs = PoolObs::new(&metrics);
        assert!(obs.is_enabled());
        run_observed(4, 32, &obs, || (), |_, i| i);
        run_observed(1, 5, &obs, || (), |_, i| i);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("pool.runs"), Some(2));
        assert_eq!(snap.counter("pool.tasks"), Some(37));
        // Gauges hold the most recent run's shape.
        assert_eq!(snap.gauge("pool.queue.depth"), Some(5));
        assert_eq!(snap.gauge("pool.workers"), Some(1));
        // Every participating worker recorded exactly one busy-time and
        // one claimed-count sample.
        let tasks = snap.histogram("pool.worker.tasks").expect("recorded");
        let busy = snap.histogram("pool.worker.busy_us").expect("recorded");
        assert_eq!(tasks.count, busy.count);
        // Claimed counts sum to total tasks across both runs.
        assert_eq!(tasks.sum_us, 37);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = PoolObs::disabled();
        assert!(!obs.is_enabled());
        let out = run_observed(3, 20, &obs, || (), |_, i| i + 1);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn try_run_success_matches_run_across_thread_counts() {
        for threads in [1, 2, 8] {
            let fallible = try_run(threads, 80, || (), |_, i| Ok::<usize, String>(i * 7))
                .expect("no task fails");
            let plain = run(threads, 80, || (), |_, i| i * 7);
            assert_eq!(fallible, plain, "threads = {threads}");
        }
    }

    #[test]
    fn error_at_fixed_index_is_identical_across_thread_counts() {
        for threads in [1, 2, 8] {
            let err = try_run(
                threads,
                60,
                || (),
                |_, i| {
                    if i == 23 {
                        Err(format!("bad block {i}"))
                    } else {
                        Ok(i)
                    }
                },
            )
            .expect_err("task 23 fails");
            assert_eq!(
                err,
                TaskFailure {
                    index: 23,
                    kind: FailureKind::Failed("bad block 23".to_string()),
                },
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn panic_at_fixed_index_is_identical_across_thread_counts() {
        quiet_panics();
        for threads in [1, 2, 8] {
            let err = try_run(
                threads,
                60,
                || (),
                |_, i| {
                    if i == 17 {
                        panic!("boom at {i}");
                    }
                    Ok::<usize, String>(i)
                },
            )
            .expect_err("task 17 panics");
            assert_eq!(
                err,
                TaskFailure {
                    index: 17,
                    kind: FailureKind::Panicked("boom at 17".to_string()),
                },
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn lowest_index_failure_wins_with_many_failures() {
        quiet_panics();
        // Tasks 11, 29, and 43 all fail (29 by panic); the reported
        // failure must always be index 11 regardless of schedule.
        for threads in [1, 2, 8] {
            let err = try_run(
                threads,
                50,
                || (),
                |_, i| match i {
                    11 | 43 => Err(format!("err {i}")),
                    29 => panic!("boom {i}"),
                    _ => Ok(i),
                },
            )
            .expect_err("multiple tasks fail");
            assert_eq!(
                err,
                TaskFailure {
                    index: 11,
                    kind: FailureKind::Failed("err 11".to_string()),
                },
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn failure_drops_all_written_results_without_leaks() {
        quiet_panics();
        // Count live clones of a drop-tracking token: every result
        // written before the failure must be dropped on the error path.
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let alive = Arc::new(AtomicUsize::new(0));
        for threads in [1, 2, 8] {
            for fail_at in [0, 1, 37, 63] {
                let alive = Arc::clone(&alive);
                let result = try_run(
                    threads,
                    64,
                    || (),
                    |_, i| {
                        if i == fail_at {
                            if i % 2 == 0 {
                                return Err("injected error");
                            }
                            panic!("injected panic");
                        }
                        alive.fetch_add(1, Ordering::SeqCst);
                        Ok(Tracked(Arc::clone(&alive)))
                    },
                );
                assert_eq!(
                    result.err().map(|f| f.index),
                    Some(fail_at),
                    "threads = {threads}, fail_at = {fail_at}"
                );
                assert_eq!(
                    alive.load(Ordering::SeqCst),
                    0,
                    "leak: threads = {threads}, fail_at = {fail_at}"
                );
            }
        }
    }

    #[test]
    fn poison_stops_further_claims() {
        quiet_panics();
        // Serial path: a failure at index 5 means no task after 5 runs.
        let touched = AtomicUsize::new(0);
        let err = try_run(
            1,
            100,
            || (),
            |_, i| {
                touched.fetch_add(1, Ordering::SeqCst);
                if i == 5 {
                    Err("injected stop")
                } else {
                    Ok(i)
                }
            },
        )
        .expect_err("task 5 fails");
        assert_eq!(err.index, 5);
        assert_eq!(touched.load(Ordering::SeqCst), 6);
        // Parallel path: with the poison flag, far fewer than all 10_000
        // tasks run after an index-0 failure (in-flight tasks may
        // finish, bounded by the worker count).
        let touched = AtomicUsize::new(0);
        let err = try_run(
            4,
            10_000,
            || (),
            |_, i| {
                touched.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    Err("injected stop")
                } else {
                    std::thread::yield_now();
                    Ok(i)
                }
            },
        )
        .expect_err("task 0 fails");
        assert_eq!(err.index, 0);
        assert!(
            touched.load(Ordering::SeqCst) < 10_000,
            "poison flag did not stop the queue"
        );
    }

    #[test]
    fn try_run_observed_counts_failures() {
        let metrics = Metrics::enabled();
        let obs = PoolObs::new(&metrics);
        let ok = try_run_observed(2, 10, &obs, || (), |_, i| Ok::<usize, String>(i));
        assert!(ok.is_ok());
        let err = try_run_observed(
            2,
            10,
            &obs,
            || (),
            |_, i| {
                if i == 3 {
                    Err("nope".to_string())
                } else {
                    Ok(i)
                }
            },
        );
        assert!(err.is_err());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("pool.runs"), Some(2));
        assert_eq!(snap.counter("pool.failures"), Some(1));
    }

    #[test]
    fn task_failure_renders_both_kinds() {
        let failed = TaskFailure {
            index: 4,
            kind: FailureKind::Failed("out of range".to_string()),
        };
        assert_eq!(failed.to_string(), "task 4 failed: out of range");
        let panicked: TaskFailure<String> = TaskFailure {
            index: 9,
            kind: FailureKind::Panicked("boom".to_string()),
        };
        assert_eq!(panicked.to_string(), "task 9 panicked: boom");
    }
}
