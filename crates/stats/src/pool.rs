//! A shared worker pool for deterministic data-parallel task queues.
//!
//! The Monte-Carlo engine and the world-analysis driver both follow the
//! same pattern: a *flattened*, statically indexed list of independent
//! tasks (blocks of randomized recipes, rows of an overlap matrix,
//! per-region setup jobs) whose results must be combined in **task
//! order** so the outcome is bit-identical regardless of how many
//! threads ran it. This module is that pattern, extracted:
//!
//! * work is claimed dynamically (an atomic cursor), so imbalanced
//!   tasks still load-balance;
//! * every task index is claimed by exactly one worker, which writes
//!   the result into the index's dedicated slot — no locks, no
//!   post-hoc sorting;
//! * the caller receives `Vec<T>` in task order, making the canonical
//!   merge a plain in-order fold.
//!
//! Workers can carry mutable per-worker scratch state (`init` builds
//! one per worker), which is how the samplers reuse allocation-free
//! buffers across tasks.
//!
//! # Observability
//!
//! [`run_observed`] is [`run`] plus pool telemetry through a
//! [`PoolObs`] handle (queue depth, per-worker claimed-task counts and
//! busy time). Instrumentation never influences scheduling or results,
//! and a disabled handle reduces every probe to one branch — [`run`]
//! itself delegates to [`run_observed`] with a disabled handle.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use culinaria_obs::{Counter, Gauge, Histogram, Metrics};

/// Resolve a requested thread count: `0` means "use the machine",
/// anything else is taken literally (callers cap by task count).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One result slot per task. Safety rests on the claim protocol: an
/// index is handed to exactly one worker (atomic `fetch_add`), so each
/// cell has exactly one writer, and the scope join orders all writes
/// before the read-back.
struct Slots<T> {
    cells: Vec<UnsafeCell<MaybeUninit<T>>>,
}

// SAFETY: cells are only accessed through disjoint indices (one writer
// each, no readers until after the thread scope ends).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// # Safety
    /// `idx` must be claimed by exactly one worker, exactly once.
    unsafe fn write(&self, idx: usize, value: T) {
        (*self.cells[idx].get()).write(value);
    }

    /// # Safety
    /// Every index must have been written exactly once.
    unsafe fn into_vec(self) -> Vec<T> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().assume_init())
            .collect()
    }
}

/// Pool telemetry handles, prefetched once so workers never touch the
/// metrics registry. All pool call sites share one `pool.*` namespace:
///
/// * `pool.runs` — pool invocations (counter);
/// * `pool.tasks` — total tasks executed (counter);
/// * `pool.queue.depth` — task count of the most recent run (gauge);
/// * `pool.workers` — worker count of the most recent run (gauge);
/// * `pool.worker.tasks` — tasks claimed per worker per run (histogram,
///   unitless — its spread shows load balance);
/// * `pool.worker.busy_us` — per-worker wall time inside the claim loop
///   per run (histogram).
#[derive(Debug, Clone, Default)]
pub struct PoolObs {
    runs: Counter,
    tasks: Counter,
    queue_depth: Gauge,
    workers: Gauge,
    worker_tasks: Histogram,
    worker_busy: Histogram,
    enabled: bool,
}

impl PoolObs {
    /// Register the `pool.*` instruments on `metrics` (no-op handles
    /// for a disabled registry).
    pub fn new(metrics: &Metrics) -> PoolObs {
        PoolObs {
            runs: metrics.counter("pool.runs"),
            tasks: metrics.counter("pool.tasks"),
            queue_depth: metrics.gauge("pool.queue.depth"),
            workers: metrics.gauge("pool.workers"),
            worker_tasks: metrics.histogram("pool.worker.tasks"),
            worker_busy: metrics.histogram("pool.worker.busy_us"),
            enabled: metrics.is_enabled(),
        }
    }

    /// A fully inert handle — what [`run`] uses.
    pub fn disabled() -> PoolObs {
        PoolObs::default()
    }

    /// True when the probes record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Run `n_tasks` independent tasks across `n_threads` workers and
/// return their results **in task order**.
///
/// `init` builds one scratch state per worker; `task` maps
/// `(scratch, task index)` to a result. Task results do not depend on
/// which worker ran them, so as long as `task` itself is deterministic
/// per index, the returned vector is identical for every thread count —
/// the determinism contract DESIGN.md documents.
///
/// `n_threads == 0` means "use the available parallelism"; the count is
/// always capped by `n_tasks`. With one effective thread the queue runs
/// inline with no thread machinery at all.
pub fn run<S, T, Init, Task>(n_threads: usize, n_tasks: usize, init: Init, task: Task) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> T + Sync,
{
    run_observed(n_threads, n_tasks, &PoolObs::disabled(), init, task)
}

/// [`run`] with pool telemetry: queue depth and worker count are set at
/// entry, and each worker records its claimed-task count and busy time
/// when its claim loop drains. The task results are identical to
/// [`run`]'s — telemetry observes the schedule, it never alters it.
///
/// Note the per-worker numbers describe *this run's actual schedule*,
/// which legitimately varies with thread count and OS timing; only the
/// task results carry the bit-identity contract.
pub fn run_observed<S, T, Init, Task>(
    n_threads: usize,
    n_tasks: usize,
    obs: &PoolObs,
    init: Init,
    task: Task,
) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    Task: Fn(&mut S, usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let n_threads = effective_threads(n_threads).min(n_tasks).max(1);
    obs.runs.incr();
    obs.tasks.add(n_tasks as u64);
    obs.queue_depth.set(n_tasks as i64);
    obs.workers.set(n_threads as i64);
    if n_threads == 1 {
        let timer = obs.worker_busy.start();
        let mut state = init();
        let out = (0..n_tasks).map(|i| task(&mut state, i)).collect();
        timer.stop();
        obs.worker_tasks.record(n_tasks as u64);
        return out;
    }

    let slots = Slots::new(n_tasks);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let slots = &slots;
        let cursor = &cursor;
        let init = &init;
        let task = &task;
        for _ in 0..n_threads {
            scope.spawn(move || {
                // One clock read per worker per run — nothing per task.
                let started = obs.is_enabled().then(Instant::now);
                let mut claimed = 0u64;
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    let result = task(&mut state, i);
                    claimed += 1;
                    // SAFETY: `i` came from the shared cursor, so this
                    // worker is its unique writer.
                    unsafe { slots.write(i, result) };
                }
                if let Some(started) = started {
                    obs.worker_busy.record_duration(started.elapsed());
                    obs.worker_tasks.record(claimed);
                }
            });
        }
    });
    // SAFETY: the scope joined every worker and the cursor covered
    // 0..n_tasks, so each slot was written exactly once.
    unsafe { slots.into_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_task_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 8, 17] {
            let out = run(threads, 100, || (), |_, i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts its own tasks; the sum must equal n_tasks.
        let counts = run(
            4,
            64,
            || 0usize,
            |state, _| {
                *state += 1;
                *state
            },
        );
        // Every worker's sequence 1, 2, 3, … appears interleaved; the
        // number of 1s equals the number of workers that claimed work.
        let ones = counts.iter().filter(|&&c| c == 1).count();
        assert!((1..=4).contains(&ones), "{ones} workers participated");
        assert_eq!(counts.len(), 64);
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(run(4, 0, || (), |_, i| i), Vec::<usize>::new());
        assert_eq!(run(4, 1, || (), |_, i| i + 41), vec![41]);
    }

    #[test]
    fn heavier_than_thread_count() {
        let out = run(2, 1000, || (), |_, i| i as u64);
        assert_eq!(out.iter().sum::<u64>(), 999 * 1000 / 2);
    }

    #[test]
    fn non_copy_results() {
        let out = run(3, 10, || (), |_, i| format!("task-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("task-{i}"));
        }
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let metrics = Metrics::enabled();
        let obs = PoolObs::new(&metrics);
        for threads in [1, 2, 8] {
            let observed = run_observed(threads, 50, &obs, || (), |_, i| i * 3);
            let plain = run(threads, 50, || (), |_, i| i * 3);
            assert_eq!(observed, plain, "threads = {threads}");
        }
    }

    #[test]
    fn observed_run_records_pool_metrics() {
        let metrics = Metrics::enabled();
        let obs = PoolObs::new(&metrics);
        assert!(obs.is_enabled());
        run_observed(4, 32, &obs, || (), |_, i| i);
        run_observed(1, 5, &obs, || (), |_, i| i);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("pool.runs"), Some(2));
        assert_eq!(snap.counter("pool.tasks"), Some(37));
        // Gauges hold the most recent run's shape.
        assert_eq!(snap.gauge("pool.queue.depth"), Some(5));
        assert_eq!(snap.gauge("pool.workers"), Some(1));
        // Every participating worker recorded exactly one busy-time and
        // one claimed-count sample.
        let tasks = snap.histogram("pool.worker.tasks").expect("recorded");
        let busy = snap.histogram("pool.worker.busy_us").expect("recorded");
        assert_eq!(tasks.count, busy.count);
        // Claimed counts sum to total tasks across both runs.
        assert_eq!(tasks.sum_us, 37);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = PoolObs::disabled();
        assert!(!obs.is_enabled());
        let out = run_observed(3, 20, &obs, || (), |_, i| i + 1);
        assert_eq!(out.len(), 20);
    }
}
