//! Deterministic seed derivation for parallel PRNG streams.
//!
//! The Monte-Carlo engine splits work across threads; to keep results
//! independent of the thread count, each logical *stream* (cuisine ×
//! model × chunk) derives its seed deterministically from the master
//! seed via SplitMix64, the standard seed-expansion mixer.

/// One SplitMix64 step: advances `state` and returns a mixed 64-bit value.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalize a SplitMix64 state into an output value.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of logical stream `stream` from `master`.
///
/// Distinct `(master, stream)` pairs yield well-separated seeds; the same
/// pair always yields the same seed, making parallel runs reproducible
/// regardless of thread scheduling.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Two rounds of SplitMix64 keyed by master, offset by the stream id.
    let mut state = master ^ mix(stream.wrapping_mul(0xA076_1D64_78BD_642F));
    splitmix64(&mut state);
    let a = mix(state);
    splitmix64(&mut state);
    let b = mix(state);
    a ^ b.rotate_left(32)
}

/// Derive a seed from a master seed and a string label (e.g. a region
/// code), via FNV-1a over the label bytes.
pub fn derive_seed_labeled(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    derive_seed(master, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_seed_labeled(7, "ITA"), derive_seed_labeled(7, "ITA"));
    }

    #[test]
    fn distinct_streams_distinct_seeds() {
        let mut seen = HashSet::new();
        for stream in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(99, stream)),
                "collision at {stream}"
            );
        }
    }

    #[test]
    fn distinct_masters_distinct_seeds() {
        let mut seen = HashSet::new();
        for master in 0..10_000u64 {
            assert!(seen.insert(derive_seed(master, 0)));
        }
    }

    #[test]
    fn labels_differ() {
        let a = derive_seed_labeled(1, "ITA");
        let b = derive_seed_labeled(1, "JPN");
        assert_ne!(a, b);
        // Label order matters.
        assert_ne!(derive_seed_labeled(1, "ab"), derive_seed_labeled(1, "ba"));
    }

    #[test]
    fn bits_look_mixed() {
        // Weak avalanche check: flipping one stream bit changes many
        // output bits on average.
        let mut total = 0u32;
        for s in 0..64u64 {
            let a = derive_seed(5, 1 << s);
            let b = derive_seed(5, (1 << s) | 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!(avg > 20.0 && avg < 44.0, "avg flipped bits {avg}");
    }
}
