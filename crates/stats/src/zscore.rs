//! Z-scores of an observed statistic against a Monte-Carlo null ensemble.
//!
//! The paper compares a cuisine's mean flavor-sharing score ⟨N_s⟩ against
//! the same statistic over a randomized cuisine of `N_rand` = 100,000
//! recipes, and reports
//!
//! ```text
//! Z = (⟨N_s⟩_cuisine − ⟨N_s⟩_rand) / (σ_rand / √N_rand)
//! ```
//!
//! i.e. the deviation of the observed mean in units of the null
//! ensemble's *standard error of the mean* — the same construction used
//! by Ahn et al. (2011). [`NullEnsemble`] packages the null's summary
//! statistics; [`z_score_of_mean`] applies the formula.

use crate::running::RunningStats;

/// Summary of a null (randomized) ensemble of scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NullEnsemble {
    /// Ensemble mean.
    pub mean: f64,
    /// Ensemble standard deviation (sample, n−1).
    pub std_dev: f64,
    /// Number of randomized draws in the ensemble.
    pub n: u64,
}

impl NullEnsemble {
    /// Summarize a completed [`RunningStats`] accumulator.
    ///
    /// Returns `None` when the accumulator holds fewer than two
    /// observations (no standard deviation is defined).
    pub fn from_running(rs: &RunningStats) -> Option<NullEnsemble> {
        Some(NullEnsemble {
            mean: rs.mean()?,
            std_dev: rs.std_dev()?,
            n: rs.count(),
        })
    }

    /// Standard error of the ensemble mean: σ / √n.
    pub fn standard_error(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }
}

/// Classic single-observation z-score: (x − μ) / σ.
///
/// Returns `None` when σ is zero or not finite.
pub fn z_score(x: f64, mu: f64, sigma: f64) -> Option<f64> {
    if sigma <= 0.0 || !sigma.is_finite() {
        return None;
    }
    Some((x - mu) / sigma)
}

/// The paper's z-score: observed mean vs a null ensemble, scaled by the
/// ensemble's standard error of the mean.
///
/// Returns `None` when the ensemble is degenerate (zero spread).
pub fn z_score_of_mean(observed_mean: f64, null: &NullEnsemble) -> Option<f64> {
    z_score(observed_mean, null.mean, null.standard_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_score_basic() {
        assert_eq!(z_score(12.0, 10.0, 2.0), Some(1.0));
        assert_eq!(z_score(8.0, 10.0, 2.0), Some(-1.0));
        assert_eq!(z_score(1.0, 0.0, 0.0), None);
        assert_eq!(z_score(1.0, 0.0, f64::NAN), None);
        assert_eq!(z_score(1.0, 0.0, -1.0), None);
    }

    #[test]
    fn standard_error_shrinks_with_n() {
        let a = NullEnsemble {
            mean: 0.0,
            std_dev: 2.0,
            n: 4,
        };
        let b = NullEnsemble {
            mean: 0.0,
            std_dev: 2.0,
            n: 100,
        };
        assert!((a.standard_error() - 1.0).abs() < 1e-12);
        assert!((b.standard_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn z_of_mean_uses_standard_error() {
        let null = NullEnsemble {
            mean: 10.0,
            std_dev: 5.0,
            n: 10_000,
        };
        // SE = 5/100 = 0.05; observed 10.1 → z = 2.
        let z = z_score_of_mean(10.1, &null).unwrap();
        assert!((z - 2.0).abs() < 1e-9);
    }

    #[test]
    fn larger_ensembles_amplify_z() {
        // Same observed deviation, bigger null ensemble → larger |Z|,
        // exactly the paper's sensitivity to N_rand = 100,000.
        let small = NullEnsemble {
            mean: 10.0,
            std_dev: 5.0,
            n: 100,
        };
        let big = NullEnsemble {
            mean: 10.0,
            std_dev: 5.0,
            n: 100_000,
        };
        let z_small = z_score_of_mean(10.5, &small).unwrap();
        let z_big = z_score_of_mean(10.5, &big).unwrap();
        assert!(z_big > z_small);
        assert!((z_big / z_small - (1000.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn from_running_stats() {
        let rs: RunningStats = [1.0, 2.0, 3.0].iter().copied().collect();
        let null = NullEnsemble::from_running(&rs).unwrap();
        assert_eq!(null.n, 3);
        assert!((null.mean - 2.0).abs() < 1e-12);
        assert!((null.std_dev - 1.0).abs() < 1e-12);

        let single: RunningStats = [1.0].iter().copied().collect();
        assert!(NullEnsemble::from_running(&single).is_none());
    }

    #[test]
    fn degenerate_null_gives_none() {
        let rs: RunningStats = [5.0, 5.0, 5.0].iter().copied().collect();
        let null = NullEnsemble::from_running(&rs).unwrap();
        assert!(z_score_of_mean(6.0, &null).is_none());
    }
}
