//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the robustness analyses ("how robust are the patterns to
//! changes in recipe data?") to compare recipe-size and score
//! distributions between cuisines or between a cuisine and its null.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic D = sup |F₁(x) − F₂(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution
    /// approximation; accurate for moderately large samples).
    pub p_value: f64,
}

/// Two-sample KS test. Returns `None` when either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);

    let (na, nb) = (sa.len(), sb.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = sa[i].min(sb[j]);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }

    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Survival function of the Kolmogorov distribution:
/// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²), clamped to [0, 1].
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&xs, &xs).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 0.2);
    }

    #[test]
    fn same_distribution_high_p() {
        let mut rng = StdRng::seed_from_u64(21);
        let a: Vec<f64> = (0..400).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..400).map(|_| rng.random::<f64>()).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic < 0.12);
        assert!(r.p_value > 0.05, "p {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_low_p() {
        let mut rng = StdRng::seed_from_u64(22);
        let a: Vec<f64> = (0..400).map(|_| rng.random::<f64>()).collect();
        let b: Vec<f64> = (0..400).map(|_| rng.random::<f64>() + 0.3).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p {}", r.p_value);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn known_small_example() {
        // F_a jumps at 1,2 (n=2); F_b jumps at 1.5 (n=1). D = 0.5.
        let r = ks_two_sample(&[1.0, 2.0], &[1.5]).unwrap();
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sf_bounds() {
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(0.5) > 0.9);
        assert!(kolmogorov_sf(2.0) < 0.001);
    }
}
