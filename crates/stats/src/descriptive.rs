//! Descriptive statistics over `f64` slices.
//!
//! Conventions: empty input yields `None` (or NaN-free defaults where
//! documented); variance is the *sample* variance (n−1 denominator)
//! unless stated otherwise; quantiles use linear interpolation between
//! order statistics (type-7, the numpy default).

/// Arithmetic mean. `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (n−1). `None` for fewer than two observations.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Population variance (n). `None` for empty input.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    Some(ss / xs.len() as f64)
}

/// Sample standard deviation. `None` for fewer than two observations.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population standard deviation. `None` for empty input.
pub fn population_std_dev(xs: &[f64]) -> Option<f64> {
    population_variance(xs).map(f64::sqrt)
}

/// Median (type-7 quantile at q = 0.5). `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Type-7 quantile with linear interpolation. `q` is clamped to [0, 1].
/// `None` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Type-7 quantile over pre-sorted data (ascending). Avoids re-sorting in
/// hot loops.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Skewness (adjusted Fisher–Pearson, the sample-bias-corrected g1).
/// `None` for fewer than three observations or zero variance.
pub fn skewness(xs: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    let s = std_dev(xs)?;
    if s == 0.0 {
        return None;
    }
    let nf = n as f64;
    let m3: f64 = xs.iter().map(|&x| ((x - m) / s).powi(3)).sum::<f64>();
    Some(m3 * nf / ((nf - 1.0) * (nf - 2.0)))
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n: xs.len(),
            mean: mean(xs).expect("non-empty"),
            std_dev: std_dev(xs).unwrap_or(0.0),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn mean_known_values() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn variance_known_values() {
        // Sample variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&xs).unwrap(), 32.0 / 7.0);
        assert_close(population_variance(&xs).unwrap(), 4.0);
        assert_close(population_std_dev(&xs).unwrap(), 2.0);
        assert!(variance(&[1.0]).is_none());
        assert!(population_variance(&[]).is_none());
    }

    #[test]
    fn median_even_and_odd() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_close(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_close(quantile(&xs, 0.25).unwrap(), 1.75);
        // Out-of-range q is clamped.
        assert_close(quantile(&xs, 2.0).unwrap(), 4.0);
        assert_close(quantile(&xs, -1.0).unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_sorted_empty_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data → positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        // Symmetric data → ~0 skewness.
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_close(skewness(&sym).unwrap(), 0.0);
        assert!(skewness(&[1.0, 2.0]).is_none());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_none());
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_close(s.mean, 3.0);
        assert_close(s.min, 1.0);
        assert_close(s.max, 5.0);
        assert_close(s.median, 3.0);
        assert_close(s.q1, 2.0);
        assert_close(s.q3, 4.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_close(s.std_dev, 0.0);
        assert_close(s.median, 7.0);
    }
}
