//! Pearson and Spearman correlation coefficients.

/// Pearson product-moment correlation. `None` for mismatched lengths,
/// fewer than two points, or zero variance in either variable.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Fractional ranks (1-based), with ties assigned the average rank —
/// the standard mid-rank convention for Spearman correlation.
pub fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (Pearson on mid-ranks). `None` under the
/// same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&fractional_ranks(xs), &fractional_ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Hand-computed: cov = 2.0 (n−1 basis cancels), r = 0.8.
        assert!((pearson(&x, &y).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn ranks_with_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // Classic example with one swapped pair.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 3.0, 2.0, 4.0, 5.0];
        // d = [0,1,1,0,0]; ρ = 1 − 6·2/(5·24) = 0.9.
        assert!((spearman(&x, &y).unwrap() - 0.9).abs() < 1e-12);
    }
}
