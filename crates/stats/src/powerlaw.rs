//! Discrete power-law fitting and rank-frequency utilities.
//!
//! Fig 3b of the paper plots ingredient *frequency of use*, normalized by
//! the most popular ingredient, against popularity rank, and observes "an
//! exceptionally consistent scaling phenomenon" across all 22 cuisines.
//! This module provides:
//!
//! * [`rank_frequency`] — the normalized rank-frequency series;
//! * [`fit_discrete_power_law`] — maximum-likelihood exponent for a
//!   discrete power law P(x) ∝ x^(−α), x ≥ xmin (Clauset–Shalizi–Newman
//!   approximation);
//! * [`zipf_exponent`] — log-log OLS slope of the rank curve, the classic
//!   Zipf characterization used to compare cuisines.

use crate::regression::{ols, OlsFit};

/// Normalized rank-frequency series: frequencies sorted descending and
/// divided by the largest one. Empty input yields an empty series.
pub fn rank_frequency(frequencies: &[u64]) -> Vec<f64> {
    let mut sorted: Vec<u64> = frequencies.iter().copied().filter(|&f| f > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top = match sorted.first() {
        Some(&t) => t as f64,
        None => return Vec::new(),
    };
    sorted.into_iter().map(|f| f as f64 / top).collect()
}

/// Maximum-likelihood exponent of a discrete power law with support
/// x ≥ `xmin` (CSN 2009, eq. 3.7 approximation):
///
/// ```text
/// α ≈ 1 + n / Σ ln(x_i / (xmin − 1/2))
/// ```
///
/// Returns `None` when fewer than two observations lie at or above
/// `xmin`, or when `xmin` < 1.
pub fn fit_discrete_power_law(xs: &[u64], xmin: u64) -> Option<f64> {
    if xmin < 1 {
        return None;
    }
    let shifted: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|&x| x >= xmin)
        .map(|x| (x as f64 / (xmin as f64 - 0.5)).ln())
        .collect();
    if shifted.len() < 2 {
        return None;
    }
    let denom: f64 = shifted.iter().sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + shifted.len() as f64 / denom)
}

/// Zipf exponent: the negated slope of the OLS fit of
/// ln(frequency) against ln(rank) over the positive-frequency ranks.
/// Returns the fit alongside the exponent. `None` when fewer than two
/// positive frequencies exist.
pub fn zipf_exponent(frequencies: &[u64]) -> Option<(f64, OlsFit)> {
    let series = rank_frequency(frequencies);
    if series.len() < 2 {
        return None;
    }
    let pts: Vec<(f64, f64)> = series
        .iter()
        .enumerate()
        .map(|(i, &f)| (((i + 1) as f64).ln(), f.ln()))
        .collect();
    let fit = ols(&pts)?;
    Some((-fit.slope, fit))
}

/// Cumulative share of total usage covered by the top `k` ranks, for each
/// k — the inset statistic of Fig 3b. Output `out[k-1]` = share covered
/// by ranks 1..=k; the final element is 1.
pub fn cumulative_share(frequencies: &[u64]) -> Vec<f64> {
    let mut sorted: Vec<u64> = frequencies.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    sorted
        .into_iter()
        .map(|f| {
            acc += f;
            acc as f64 / total as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn rank_frequency_sorted_and_normalized() {
        let rf = rank_frequency(&[3, 10, 0, 5]);
        assert_eq!(rf.len(), 3); // zero dropped
        assert_eq!(rf[0], 1.0);
        assert!((rf[1] - 0.5).abs() < 1e-12);
        assert!((rf[2] - 0.3).abs() < 1e-12);
        assert!(rank_frequency(&[]).is_empty());
        assert!(rank_frequency(&[0, 0]).is_empty());
    }

    #[test]
    fn power_law_mle_recovers_exponent() {
        // Sample from a discrete power law with α = 2.5. The CSN eq-3.7
        // approximation is accurate for xmin ≳ 6, so generate and fit
        // with xmin = 6.
        let mut rng = StdRng::seed_from_u64(7);
        let alpha = 2.5f64;
        let xmin = 6.0f64;
        let xs: Vec<u64> = (0..40_000)
            .map(|_| {
                let u: f64 = rng.random();
                // CSN appendix D discrete generator:
                // x = ⌊(xmin − ½)(1 − u)^(−1/(α−1)) + ½⌋.
                let x = (xmin - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5;
                (x.floor() as u64).max(xmin as u64)
            })
            .collect();
        let est = fit_discrete_power_law(&xs, xmin as u64).unwrap();
        assert!(
            (est - alpha).abs() < 0.1,
            "estimated {est}, expected ~{alpha}"
        );
    }

    #[test]
    fn power_law_degenerate_inputs() {
        assert!(fit_discrete_power_law(&[], 1).is_none());
        assert!(fit_discrete_power_law(&[5], 1).is_none());
        assert!(fit_discrete_power_law(&[1, 2, 3], 0).is_none());
        // All observations below xmin.
        assert!(fit_discrete_power_law(&[1, 1, 1], 5).is_none());
    }

    #[test]
    fn zipf_exponent_of_exact_zipf() {
        // frequencies ∝ 1/rank → exponent 1.
        let freqs: Vec<u64> = (1..=50u64).map(|r| 100_000 / r).collect();
        let (s, fit) = zipf_exponent(&freqs).unwrap();
        assert!((s - 1.0).abs() < 0.02, "slope {s}");
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn zipf_needs_two_points() {
        assert!(zipf_exponent(&[5]).is_none());
        assert!(zipf_exponent(&[]).is_none());
    }

    #[test]
    fn cumulative_share_monotone_to_one() {
        let cs = cumulative_share(&[10, 30, 60]);
        assert_eq!(cs.len(), 3);
        assert!((cs[0] - 0.6).abs() < 1e-12);
        assert!((cs[1] - 0.9).abs() < 1e-12);
        assert!((cs[2] - 1.0).abs() < 1e-12);
        assert!(cumulative_share(&[]).is_empty());
        assert!(cumulative_share(&[0]).is_empty());
    }
}
