//! Percentile bootstrap confidence intervals.
//!
//! Used to attach uncertainty to per-cuisine mean pairing scores without
//! distributional assumptions (the N_s distribution over recipes is
//! skewed).

use rand::{Rng, RngExt};

use crate::descriptive::quantile_sorted;

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Percentile bootstrap CI for an arbitrary statistic.
///
/// Resamples `xs` with replacement `n_resamples` times, computes `stat`
/// on each resample, and returns the percentile interval at `level`.
/// Returns `None` for empty input, a non-finite statistic, `level`
/// outside (0, 1), or `n_resamples == 0`.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    xs: &[f64],
    n_resamples: usize,
    level: f64,
    stat: impl Fn(&[f64]) -> f64,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    if xs.is_empty() || n_resamples == 0 || !(0.0..1.0).contains(&level) || level <= 0.0 {
        return None;
    }
    let estimate = stat(xs);
    if !estimate.is_finite() {
        return None;
    }
    let mut resample = vec![0.0; xs.len()];
    let mut stats = Vec::with_capacity(n_resamples);
    for _ in 0..n_resamples {
        for slot in resample.iter_mut() {
            *slot = xs[rng.random_range(0..xs.len())];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        lo: quantile_sorted(&stats, alpha),
        hi: quantile_sorted(&stats, 1.0 - alpha),
        estimate,
        level,
    })
}

/// Percentile bootstrap CI of the mean.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    xs: &[f64],
    n_resamples: usize,
    level: f64,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(
        xs,
        n_resamples,
        level,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ci_brackets_true_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        // Sample from a known distribution centered at 5.
        let xs: Vec<f64> = (0..500).map(|_| 5.0 + rng.random::<f64>() - 0.5).collect();
        let ci = bootstrap_mean_ci(&xs, 2000, 0.95, &mut rng).unwrap();
        assert!(ci.lo < 5.0 && 5.0 < ci.hi, "CI [{}, {}]", ci.lo, ci.hi);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn wider_level_wider_interval() {
        let mut rng = StdRng::seed_from_u64(12);
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let mut rng2 = StdRng::seed_from_u64(13);
        let narrow = bootstrap_mean_ci(&xs, 3000, 0.80, &mut rng).unwrap();
        let wide = bootstrap_mean_ci(&xs, 3000, 0.99, &mut rng2).unwrap();
        assert!(wide.hi - wide.lo > narrow.hi - narrow.lo);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bootstrap_mean_ci(&[], 100, 0.95, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.0, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.0, &mut rng).is_none());
    }

    #[test]
    fn single_point_sample_collapses() {
        let mut rng = StdRng::seed_from_u64(2);
        let ci = bootstrap_mean_ci(&[4.0], 50, 0.9, &mut rng).unwrap();
        assert_eq!(ci.lo, 4.0);
        assert_eq!(ci.hi, 4.0);
    }

    #[test]
    fn custom_statistic() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let ci = bootstrap_ci(
            &xs,
            1000,
            0.95,
            |s| {
                let mut v = s.to_vec();
                v.sort_by(f64::total_cmp);
                quantile_sorted(&v, 0.5)
            },
            &mut rng,
        )
        .unwrap();
        assert!(ci.lo < 51.0 && 51.0 < ci.hi);
    }
}
