//! Pearson's chi-squared goodness-of-fit test.
//!
//! Used to quantify how far a region's category composition deviates
//! from the world aggregate (Fig 2's "salient as well as subtle
//! patterns", made numeric).

/// Result of a chi-squared test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
}

/// Goodness-of-fit: observed counts vs expected *proportions*.
///
/// Categories whose expected proportion is zero are dropped when the
/// observed count is also zero, and make the test undefined (`None`)
/// otherwise. Returns `None` for empty input, mismatched lengths, a
/// zero observation total, or fewer than two usable categories.
pub fn chi2_goodness_of_fit(observed: &[u64], expected_prop: &[f64]) -> Option<Chi2Result> {
    if observed.len() != expected_prop.len() || observed.is_empty() {
        return None;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return None;
    }
    let prop_sum: f64 = expected_prop.iter().sum();
    if prop_sum <= 0.0 || expected_prop.iter().any(|&p| p < 0.0) {
        return None;
    }
    let mut statistic = 0.0;
    let mut used = 0usize;
    for (&obs, &prop) in observed.iter().zip(expected_prop) {
        let expected = total as f64 * prop / prop_sum;
        if expected == 0.0 {
            if obs != 0 {
                return None; // impossible under the expected model
            }
            continue;
        }
        let d = obs as f64 - expected;
        statistic += d * d / expected;
        used += 1;
    }
    if used < 2 {
        return None;
    }
    let dof = used - 1;
    Some(Chi2Result {
        statistic,
        dof,
        p_value: chi2_sf(statistic, dof),
    })
}

/// Upper-tail probability of the χ² distribution with `dof` degrees of
/// freedom: Q(x; k) = Γ(k/2, x/2) / Γ(k/2), via the regularized
/// incomplete gamma function (series + continued fraction, Numerical
/// Recipes style).
pub fn chi2_sf(x: f64, dof: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    let a = dof as f64 / 2.0;
    let x = x / 2.0;
    1.0 - lower_regularized_gamma(a, x)
}

fn ln_gamma(x: f64) -> f64 {
    // Lanczos approximation (g = 7, n = 9), standard coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma P(a, x).
fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series expansion.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a))
            .exp()
            .clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x) (Lentz's algorithm).
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // Γ(5)=4!
        assert_close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-10);
    }

    #[test]
    fn chi2_sf_known_values() {
        // χ²(1): Q(3.841) ≈ 0.05; χ²(2): Q(5.991) ≈ 0.05.
        assert_close(chi2_sf(3.841, 1), 0.05, 1e-3);
        assert_close(chi2_sf(5.991, 2), 0.05, 1e-3);
        assert_close(chi2_sf(9.488, 4), 0.05, 1e-3);
        // χ²(2) has closed form Q(x) = exp(−x/2).
        assert_close(chi2_sf(4.0, 2), (-2.0f64).exp(), 1e-10);
        assert_eq!(chi2_sf(0.0, 3), 1.0);
        assert_eq!(chi2_sf(-1.0, 3), 1.0);
    }

    #[test]
    fn fair_die_accepted() {
        // 600 rolls of a fair die, near-uniform counts.
        let observed = [98, 105, 101, 97, 99, 100];
        let expected = [1.0 / 6.0; 6];
        let r = chi2_goodness_of_fit(&observed, &expected).unwrap();
        assert_eq!(r.dof, 5);
        assert!(r.statistic < 2.0);
        assert!(r.p_value > 0.5, "p {}", r.p_value);
    }

    #[test]
    fn loaded_die_rejected() {
        let observed = [200, 80, 80, 80, 80, 80];
        let expected = [1.0 / 6.0; 6];
        let r = chi2_goodness_of_fit(&observed, &expected).unwrap();
        assert!(r.p_value < 1e-6, "p {}", r.p_value);
    }

    #[test]
    fn unnormalized_expected_proportions_ok() {
        // Proportions need not sum to 1; they are normalized.
        let a = chi2_goodness_of_fit(&[50, 50], &[0.5, 0.5]).unwrap();
        let b = chi2_goodness_of_fit(&[50, 50], &[2.0, 2.0]).unwrap();
        assert_close(a.statistic, b.statistic, 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(chi2_goodness_of_fit(&[], &[]).is_none());
        assert!(chi2_goodness_of_fit(&[1, 2], &[0.5]).is_none());
        assert!(chi2_goodness_of_fit(&[0, 0], &[0.5, 0.5]).is_none());
        assert!(chi2_goodness_of_fit(&[1, 2], &[-0.1, 1.1]).is_none());
        // Observed mass in a zero-probability category.
        assert!(chi2_goodness_of_fit(&[5, 5], &[1.0, 0.0]).is_none());
        // Zero-probability category with zero observations is dropped.
        let r = chi2_goodness_of_fit(&[5, 5, 0], &[0.5, 0.5, 0.0]).unwrap();
        assert_eq!(r.dof, 1);
    }
}
