//! Integer histograms and cumulative distributions.
//!
//! Recipe sizes are small integers (the paper reports a bounded,
//! thin-tailed distribution with mean ≈ 9), so a dense-by-value integer
//! histogram is the natural representation for Fig 3a.

use std::collections::BTreeMap;

/// A histogram over integer values, sparse in value space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntHistogram {
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl IntHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        IntHistogram::default()
    }

    /// Build from observations.
    pub fn from_values(values: impl IntoIterator<Item = i64>) -> Self {
        let mut h = IntHistogram::new();
        for v in values {
            h.add(v);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, value: i64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `count` observations of `value`.
    pub fn add_count(&mut self, value: i64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += count;
        self.total += count;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at `value` (0 when absent).
    pub fn count(&self, value: i64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Number of distinct observed values.
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Probability mass at `value`.
    pub fn pmf(&self, value: i64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the observations. `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let s: f64 = self.iter().map(|(v, c)| v as f64 * c as f64).sum();
        Some(s / self.total as f64)
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<i64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// Mode (value with highest count; smallest value wins ties).
    pub fn mode(&self) -> Option<i64> {
        self.iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| v)
    }

    /// The cumulative distribution of this histogram.
    pub fn cumulative(&self) -> CumulativeDistribution {
        let mut points = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for (&v, &c) in &self.counts {
            acc += c;
            points.push((v, acc as f64 / self.total.max(1) as f64));
        }
        CumulativeDistribution { points }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        for (v, c) in other.iter() {
            self.add_count(v, c);
        }
    }
}

/// An empirical CDF over integer support: `(value, P(X ≤ value))` points
/// in ascending value order.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeDistribution {
    points: Vec<(i64, f64)>,
}

impl CumulativeDistribution {
    /// The CDF points, ascending in value.
    pub fn points(&self) -> &[(i64, f64)] {
        &self.points
    }

    /// P(X ≤ value): step-function evaluation.
    pub fn at(&self, value: i64) -> f64 {
        match self.points.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Smallest value v with P(X ≤ v) ≥ q (a discrete quantile).
    pub fn quantile(&self, q: f64) -> Option<i64> {
        let q = q.clamp(0.0, 1.0);
        self.points
            .iter()
            .find(|&&(_, p)| p >= q - 1e-12)
            .map(|&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntHistogram {
        IntHistogram::from_values([3, 5, 5, 7, 7, 7, 9])
    }

    #[test]
    fn counts_and_total() {
        let h = sample();
        assert_eq!(h.total(), 7);
        assert_eq!(h.count(7), 3);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.n_bins(), 4);
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = sample();
        let s: f64 = h.iter().map(|(v, _)| h.pmf(v)).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(IntHistogram::new().pmf(1), 0.0);
    }

    #[test]
    fn mean_min_max_mode() {
        let h = sample();
        assert!((h.mean().unwrap() - 43.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.mode(), Some(7));
        assert!(IntHistogram::new().mean().is_none());
    }

    #[test]
    fn mode_tie_prefers_smaller() {
        let h = IntHistogram::from_values([1, 1, 2, 2]);
        assert_eq!(h.mode(), Some(1));
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_one() {
        let h = sample();
        let cdf = h.cumulative();
        let pts = cdf.points();
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_evaluation() {
        let cdf = sample().cumulative();
        assert_eq!(cdf.at(2), 0.0);
        assert!((cdf.at(3) - 1.0 / 7.0).abs() < 1e-12);
        assert!((cdf.at(6) - 3.0 / 7.0).abs() < 1e-12);
        assert!((cdf.at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = sample().cumulative();
        assert_eq!(cdf.quantile(0.0), Some(3));
        assert_eq!(cdf.quantile(0.5), Some(7));
        assert_eq!(cdf.quantile(1.0), Some(9));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = IntHistogram::from_values([1, 2]);
        let b = IntHistogram::from_values([2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn add_count_zero_is_noop() {
        let mut h = IntHistogram::new();
        h.add_count(5, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.n_bins(), 0);
    }
}
