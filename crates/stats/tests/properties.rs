//! Property-based tests of the statistical invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use culinaria_stats::descriptive::{self, quantile, Summary};
use culinaria_stats::histogram::IntHistogram;
use culinaria_stats::powerlaw::{cumulative_share, rank_frequency};
use culinaria_stats::rng::derive_seed;
use culinaria_stats::sampling::{
    sample_without_replacement, LinearCdfSampler, WeightedAliasSampler,
};
use culinaria_stats::{correlation, RunningStats};

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn running_stats_match_batch(xs in arb_sample()) {
        let rs: RunningStats = xs.iter().copied().collect();
        let mean = descriptive::mean(&xs).expect("non-empty");
        prop_assert!((rs.mean().expect("non-empty") - mean).abs() < 1e-6 * mean.abs().max(1.0));
        if xs.len() > 1 {
            let var = descriptive::variance(&xs).expect("n >= 2");
            prop_assert!((rs.variance().expect("n >= 2") - var).abs() < 1e-6 * var.abs().max(1.0));
        }
        prop_assert_eq!(rs.count() as usize, xs.len());
    }

    #[test]
    fn running_stats_merge_any_split(xs in arb_sample(), split in 0usize..200) {
        let k = split.min(xs.len());
        let (a, b) = xs.split_at(k);
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let all: RunningStats = xs.iter().copied().collect();
        prop_assert_eq!(left.count(), all.count());
        let (lm, am) = (left.mean().expect("non-empty"), all.mean().expect("non-empty"));
        prop_assert!((lm - am).abs() < 1e-6 * am.abs().max(1.0));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in arb_sample(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).expect("non-empty");
        let b = quantile(&xs, hi).expect("non-empty");
        prop_assert!(a <= b, "q({lo})={a} > q({hi})={b}");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= a && b <= max);
    }

    #[test]
    fn summary_orders_its_fields(xs in arb_sample()) {
        let s = Summary::of(&xs).expect("non-empty");
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
        prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn histogram_cdf_monotone(values in proptest::collection::vec(-50i64..50, 1..200)) {
        let h = IntHistogram::from_values(values.iter().copied());
        prop_assert_eq!(h.total() as usize, values.len());
        let cdf = h.cumulative();
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        prop_assert!((pts.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
        // pmf sums to 1.
        let mass: f64 = h.iter().map(|(v, _)| h.pmf(v)).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_frequency_is_normalized_and_sorted(freqs in proptest::collection::vec(0u64..10_000, 0..100)) {
        let rf = rank_frequency(&freqs);
        if let Some(&first) = rf.first() {
            prop_assert_eq!(first, 1.0);
        }
        for w in rf.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for &v in &rf {
            prop_assert!(v > 0.0 && v <= 1.0);
        }
        prop_assert_eq!(rf.len(), freqs.iter().filter(|&&f| f > 0).count());
    }

    #[test]
    fn cumulative_share_ends_at_one(freqs in proptest::collection::vec(0u64..10_000, 1..100)) {
        let cs = cumulative_share(&freqs);
        if freqs.iter().sum::<u64>() == 0 {
            prop_assert!(cs.is_empty());
        } else {
            for w in cs.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
            prop_assert!((cs.last().expect("non-empty") - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn alias_sampler_stays_in_support(weights in proptest::collection::vec(0.0f64..100.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let sampler = WeightedAliasSampler::new(&weights).expect("valid weights");
        let linear = LinearCdfSampler::new(&weights).expect("valid weights");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = sampler.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "drew zero-weight index {i}");
            let j = linear.sample(&mut rng);
            prop_assert!(j < weights.len());
            prop_assert!(weights[j] > 0.0);
        }
    }

    #[test]
    fn without_replacement_always_distinct(n in 1usize..100, k in 0usize..120, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let draw = sample_without_replacement(n, k, &mut rng);
        prop_assert_eq!(draw.len(), k.min(n));
        let mut sorted = draw.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), draw.len());
        prop_assert!(draw.iter().all(|&i| i < n));
    }

    #[test]
    fn pearson_bounded_and_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = correlation::pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = correlation::pearson(&ys, &xs).expect("symmetric domain");
            prop_assert!((r - r2).abs() < 1e-9);
        }
        if let Some(s) = correlation::spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "rho = {s}");
        }
    }

    #[test]
    fn derived_seeds_deterministic_and_spread(master in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assert_eq!(derive_seed(master, s1), derive_seed(master, s1));
        if s1 != s2 {
            prop_assert_ne!(derive_seed(master, s1), derive_seed(master, s2));
        }
    }
}

mod pool_failures {
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Once};

    use proptest::prelude::*;

    use culinaria_stats::pool::{try_run, FailureKind, TaskFailure};

    /// Silence the intentional "injected" panics raised inside worker
    /// threads; everything else still reaches the default hook.
    fn quiet_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.contains("injected") {
                    prev(info);
                }
            }));
        });
    }

    proptest! {
        /// For any set of failing indices (some panicking, some
        /// erroring), every thread count reports the same
        /// lowest-index failure and leaks nothing.
        #[test]
        fn arbitrary_failure_sets_are_deterministic_and_leak_free(
            n_tasks in 1usize..120,
            fail in proptest::collection::btree_set(0usize..120, 0..6),
            panic_mask in any::<u64>(),
        ) {
            quiet_panics();
            let fail: BTreeSet<usize> = fail.into_iter().filter(|&i| i < n_tasks).collect();
            let alive = Arc::new(AtomicUsize::new(0));
            let mut outcomes: Vec<Result<usize, TaskFailure<String>>> = Vec::new();
            for threads in [1usize, 2, 8] {
                let alive = Arc::clone(&alive);
                struct Tracked(Arc<AtomicUsize>);
                impl Drop for Tracked {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let result = try_run(
                    threads,
                    n_tasks,
                    || (),
                    |_, i| {
                        if fail.contains(&i) {
                            if panic_mask >> (i % 64) & 1 == 1 {
                                panic!("injected panic {i}");
                            }
                            return Err(format!("injected error {i}"));
                        }
                        alive.fetch_add(1, Ordering::SeqCst);
                        Ok(Tracked(Arc::clone(&alive)))
                    },
                );
                // Reduce to the length first: this drops every Tracked
                // result, so a zero count below means nothing leaked on
                // either the success or the failure path.
                let outcome = result.map(|v| v.len());
                prop_assert_eq!(
                    alive.load(Ordering::SeqCst), 0,
                    "leaked results at {} threads", threads
                );
                outcomes.push(outcome);
            }
            // All thread counts agree bit-for-bit.
            prop_assert_eq!(outcomes[0].clone(), outcomes[1].clone());
            prop_assert_eq!(outcomes[1].clone(), outcomes[2].clone());
            match fail.iter().next() {
                None => prop_assert_eq!(outcomes[0].clone(), Ok(n_tasks)),
                Some(&lowest) => {
                    let failure = outcomes[0].clone().expect_err("a task fails");
                    prop_assert_eq!(failure.index, lowest);
                    let expect_panic = panic_mask >> (lowest % 64) & 1 == 1;
                    match failure.kind {
                        FailureKind::Panicked(msg) => {
                            prop_assert!(expect_panic);
                            prop_assert_eq!(msg, format!("injected panic {}", lowest));
                        }
                        FailureKind::Failed(msg) => {
                            prop_assert!(!expect_panic);
                            prop_assert_eq!(msg, format!("injected error {}", lowest));
                        }
                    }
                }
            }
        }
    }
}
