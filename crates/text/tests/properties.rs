//! Property-based tests of the NLP pipeline invariants.

use proptest::prelude::*;

use culinaria_text::alias::{AliasResolver, ResolveScratch};
use culinaria_text::edit_distance::{damerau_levenshtein, similarity, within_distance};
use culinaria_text::legacy::LegacyAliasResolver;
use culinaria_text::ngram::{ngram_strings, ngrams, ngrams_up_to};
use culinaria_text::normalize::{normalize_phrase, tokenize};
use culinaria_text::singularize::singularize;

fn arb_phrase() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ,.!()'&/-]{0,60}").expect("valid regex")
}

fn arb_word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{1,15}").expect("valid regex")
}

proptest! {
    #[test]
    fn normalization_output_is_clean(phrase in arb_phrase()) {
        let out = normalize_phrase(&phrase);
        // Only lowercase alphanumerics and single spaces.
        prop_assert!(out.chars().all(|c| c.is_alphanumeric() || c == ' '), "{out:?}");
        prop_assert!(!out.contains("  "), "double space in {out:?}");
        prop_assert!(!out.starts_with(' ') && !out.ends_with(' '), "{out:?}");
        prop_assert!(!out.chars().any(|c| c.is_uppercase()));
        // Idempotent.
        prop_assert_eq!(normalize_phrase(&out), out.clone());
    }

    #[test]
    fn tokenize_never_produces_empty_or_numeric_tokens(phrase in arb_phrase()) {
        for tok in tokenize(&phrase) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().all(|c| c.is_ascii_digit()), "numeric token {tok}");
        }
    }

    #[test]
    fn singularize_is_idempotent(word in arb_word()) {
        let once = singularize(&word);
        let twice = singularize(&once);
        prop_assert_eq!(&twice, &once, "word {}", word);
    }

    #[test]
    fn singularize_never_empties(word in arb_word()) {
        prop_assert!(!singularize(&word).is_empty());
    }

    #[test]
    fn edit_distance_is_a_metric(a in arb_word(), b in arb_word(), c in arb_word()) {
        let dab = damerau_levenshtein(&a, &b);
        let dba = damerau_levenshtein(&b, &a);
        prop_assert_eq!(dab, dba, "symmetry");
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0, "identity");
        if a != b {
            prop_assert!(dab > 0, "distinct strings at distance 0");
        }
        // OSA triangle inequality (holds for these short random words).
        let dac = damerau_levenshtein(&a, &c);
        let dcb = damerau_levenshtein(&c, &b);
        prop_assert!(dab <= dac + dcb, "triangle: d({a},{b})={dab} > {dac}+{dcb}");
    }

    #[test]
    fn edit_distance_bounded_by_longer_word(a in arb_word(), b in arb_word()) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(within_distance(&a, &b, d), true);
        if d > 0 {
            prop_assert_eq!(within_distance(&a, &b, d - 1), false);
        }
    }

    #[test]
    fn ngram_counts_follow_formula(words in proptest::collection::vec(arb_word(), 0..12), max_n in 1usize..8) {
        let m = words.len();
        let expected: usize = (1..=max_n.min(m)).map(|k| m - k + 1).sum();
        prop_assert_eq!(ngrams_up_to(&words, max_n).count(), expected);
        // Every gram is a borrowed contiguous window.
        for g in ngrams_up_to(&words, max_n) {
            prop_assert!(!g.is_empty() && g.len() <= max_n);
        }
        // Exact-n matches windows().
        for n in 1..=max_n.min(m) {
            prop_assert_eq!(ngrams(&words, n).count(), m - n + 1);
        }
        // String form has the same count.
        prop_assert_eq!(ngram_strings(&words, max_n).len(), expected);
    }

    #[test]
    fn resolver_accounts_for_every_clean_token(
        lexicon in proptest::collection::hash_set(arb_word(), 1..10),
        phrase in arb_phrase(),
    ) {
        let mut resolver = AliasResolver::new();
        for w in &lexicon {
            resolver.add_canonical(w);
        }
        let cleaned = resolver.clean_tokens(&phrase);
        let res = resolver.resolve(&phrase);
        // Every cleaned token is either covered by a match or reported
        // unresolved; nothing disappears.
        let matched_tokens: usize = res
            .matches
            .iter()
            .map(|m| m.matched_text.split(' ').count())
            .sum();
        prop_assert_eq!(matched_tokens + res.unresolved.len(), cleaned.len());
    }

    #[test]
    fn trie_resolver_matches_legacy_resolver(
        canonicals in proptest::collection::vec(
            proptest::collection::vec(arb_word(), 1..4),
            1..8,
        ),
        synonyms in proptest::collection::vec((arb_word(), arb_word()), 0..5),
        phrases in proptest::collection::vec(arb_phrase(), 1..8),
    ) {
        // Build both engines from the identical entry sequence: possibly
        // multi-word canonicals plus single-word synonym pairs.
        let mut trie = AliasResolver::new();
        let mut legacy = LegacyAliasResolver::new();
        for words in &canonicals {
            let name = words.join(" ");
            trie.add_canonical(&name);
            legacy.add_canonical(&name);
        }
        for (syn, canon) in &synonyms {
            trie.add_synonym(syn, canon);
            legacy.add_synonym(syn, canon);
        }
        prop_assert_eq!(trie.n_canonical(), legacy.n_canonical());
        prop_assert_eq!(trie.n_synonyms(), legacy.n_synonyms());
        let mut scratch = ResolveScratch::new();
        for phrase in &phrases {
            prop_assert_eq!(
                trie.clean_tokens(phrase),
                legacy.clean_tokens(phrase),
                "clean_tokens diverged on {:?}", phrase
            );
            let expected = legacy.resolve(phrase);
            prop_assert_eq!(
                &trie.resolve(phrase), &expected,
                "resolve diverged on {:?}", phrase
            );
            // The scratch/memo path must agree too (phrases repeat
            // across iterations, so this also exercises memo hits).
            prop_assert_eq!(
                &trie.resolve_with(phrase, &mut scratch), &expected,
                "resolve_with diverged on {:?}", phrase
            );
            prop_assert_eq!(trie.is_canonical(phrase), legacy.is_canonical(phrase));
        }
    }

    #[test]
    fn exact_lexicon_words_always_resolve(word in arb_word()) {
        // Skip words that the cleaning pipeline legitimately removes or
        // rewrites (stopwords, plural forms).
        prop_assume!(!culinaria_text::is_stopword(&word));
        prop_assume!(singularize(&word) == word);
        let mut resolver = AliasResolver::new();
        resolver.add_canonical(&word);
        let res = resolver.resolve(&word);
        prop_assert_eq!(res.matches.len(), 1, "word {}", &word);
        prop_assert_eq!(&res.matches[0].canonical, &word);
        prop_assert!(res.unresolved.is_empty());
    }
}
