//! Property-based tests of the quantity parser.

use proptest::prelude::*;

use culinaria_text::quantity::{parse_quantity, Unit};

proptest! {
    #[test]
    fn never_panics_on_arbitrary_text(phrase in "[ -~]{0,60}") {
        let _ = parse_quantity(&phrase);
    }

    #[test]
    fn integer_counts_roundtrip(n in 1u32..10_000, rest in "[a-z]{1,12}( [a-z]{1,12}){0,3}") {
        let q = parse_quantity(&format!("{n} {rest}")).expect("leading number parses");
        // The rest must not itself start with a unit token for Count.
        // Mirror the parser's normalization: trailing '.' and 's' strip.
        let first = rest.split(' ').next().expect("non-empty rest");
        let stripped = first.trim_end_matches('.').trim_end_matches('s');
        let is_unit = [
            "cup", "tbsp", "tsp", "teaspoon", "tablespoon", "ml", "l", "g", "kg",
            "oz", "lb", "gram", "ounce", "pound", "liter", "litre", "millilitre",
            "milliliter", "pint", "quart", "gallon", "kilogram", "fluid", "fl",
        ].contains(&stripped);
        prop_assume!(!is_unit);
        prop_assert_eq!(q.unit, Unit::Count);
        prop_assert_eq!(q.value, f64::from(n));
        prop_assert_eq!(q.rest, rest);
    }

    #[test]
    fn volumes_scale_linearly(n in 1u32..100) {
        let one = parse_quantity("1 cup flour").expect("parses");
        let many = parse_quantity(&format!("{n} cups flour")).expect("parses");
        prop_assert_eq!(many.unit, Unit::Millilitre);
        prop_assert!((many.value - one.value * f64::from(n)).abs() < 1e-9);
    }

    #[test]
    fn masses_scale_linearly(n in 1u32..100) {
        let one = parse_quantity("1 gram salt").expect("parses");
        let many = parse_quantity(&format!("{n} grams salt")).expect("parses");
        prop_assert_eq!(many.unit, Unit::Gram);
        prop_assert!((many.value - one.value * f64::from(n)).abs() < 1e-9);
    }

    #[test]
    fn fractions_are_positive_and_bounded(num in 1u32..20, den in 1u32..20) {
        let q = parse_quantity(&format!("{num}/{den} cup milk")).expect("parses");
        prop_assert!(q.value > 0.0);
        prop_assert!((q.value - 240.0 * f64::from(num) / f64::from(den)).abs() < 1e-9);
    }

    #[test]
    fn mixed_numbers_exceed_their_integer_part(whole in 1u32..10, num in 1u32..5, den in 2u32..8) {
        prop_assume!(num < den);
        let mixed = parse_quantity(&format!("{whole} {num}/{den} cups x")).expect("parses");
        let plain = parse_quantity(&format!("{whole} cups x")).expect("parses");
        prop_assert!(mixed.value > plain.value);
        prop_assert!(mixed.value < plain.value + 240.0);
    }

    #[test]
    fn attached_units_equal_spaced_units(n in 1u32..1000) {
        let attached = parse_quantity(&format!("{n}g butter")).expect("parses");
        let spaced = parse_quantity(&format!("{n} g butter")).expect("parses");
        prop_assert_eq!(attached.unit, spaced.unit);
        prop_assert!((attached.value - spaced.value).abs() < 1e-9);
        prop_assert_eq!(attached.rest, spaced.rest);
    }
}
