//! Quantity parsing for ingredient lines — groundwork for the paper's
//! §V question *"How to incorporate details of recipe preparation and
//! quantity of ingredients?"*.
//!
//! Parses the leading amount of a phrase ("2 1/2 cups flour", "250g
//! butter", "1 (15 ounce) can beans") into a numeric value and a
//! normalized [`Unit`], leaving the remainder for the aliasing
//! pipeline. Unit conversions normalize to millilitres (volume) and
//! grams (mass) so quantities are comparable across recipes.

/// Dimension-normalized units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unit {
    /// Volume in millilitres.
    Millilitre,
    /// Mass in grams.
    Gram,
    /// A dimensionless count ("2 eggs", "3 cloves").
    Count,
}

/// A parsed quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantity {
    /// Amount in the normalized unit.
    pub value: f64,
    /// Normalized unit.
    pub unit: Unit,
    /// The remainder of the phrase after the amount and unit tokens.
    pub rest: String,
}

/// `(unit token, factor, unit)` — value × factor converts to the
/// normalized unit. Tokens are matched after lowercasing and
/// trailing-`s`/`.` stripping.
const UNITS: &[(&str, f64, Unit)] = &[
    ("cup", 240.0, Unit::Millilitre),
    ("tablespoon", 15.0, Unit::Millilitre),
    ("tbsp", 15.0, Unit::Millilitre),
    ("teaspoon", 5.0, Unit::Millilitre),
    ("tsp", 5.0, Unit::Millilitre),
    ("millilitre", 1.0, Unit::Millilitre),
    ("milliliter", 1.0, Unit::Millilitre),
    ("ml", 1.0, Unit::Millilitre),
    ("litre", 1000.0, Unit::Millilitre),
    ("liter", 1000.0, Unit::Millilitre),
    ("l", 1000.0, Unit::Millilitre),
    ("pint", 473.0, Unit::Millilitre),
    ("quart", 946.0, Unit::Millilitre),
    ("gallon", 3785.0, Unit::Millilitre),
    ("fluid", 0.0, Unit::Millilitre), // handled via "fluid ounce" pairing
    ("gram", 1.0, Unit::Gram),
    ("g", 1.0, Unit::Gram),
    ("kilogram", 1000.0, Unit::Gram),
    ("kg", 1000.0, Unit::Gram),
    ("ounce", 28.35, Unit::Gram),
    ("oz", 28.35, Unit::Gram),
    ("pound", 453.6, Unit::Gram),
    ("lb", 453.6, Unit::Gram),
];

/// Parse a single numeric token: integer ("2"), decimal ("2.5"),
/// fraction ("1/2"), or unicode vulgar fraction ("½").
fn parse_number(token: &str) -> Option<f64> {
    match token {
        "½" => return Some(0.5),
        "⅓" => return Some(1.0 / 3.0),
        "⅔" => return Some(2.0 / 3.0),
        "¼" => return Some(0.25),
        "¾" => return Some(0.75),
        _ => {}
    }
    if let Some((num, den)) = token.split_once('/') {
        let n: f64 = num.parse().ok()?;
        let d: f64 = den.parse().ok()?;
        if d == 0.0 {
            return None;
        }
        return Some(n / d);
    }
    token.parse().ok()
}

/// Split a token like "250g" into ("250", "g"); `None` when the token
/// has no digit→alpha boundary.
fn split_attached_unit(token: &str) -> Option<(String, String)> {
    let boundary = token
        .char_indices()
        .find(|&(i, c)| i > 0 && c.is_alphabetic())
        .map(|(i, _)| i)?;
    let (num, unit) = token.split_at(boundary);
    if num
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == '/')
    {
        Some((num.to_owned(), unit.to_owned()))
    } else {
        None
    }
}

fn lookup_unit(token: &str) -> Option<(f64, Unit)> {
    let clean = token.trim_end_matches('.').trim_end_matches('s');
    // Exact plural forms survived the `s` strip only for tokens like
    // "tbsps"; the singular table is canonical.
    UNITS
        .iter()
        .find(|(name, _, _)| *name == clean && *name != "fluid")
        .map(|&(_, factor, unit)| (factor, unit))
}

/// Parse the leading quantity of an ingredient phrase.
///
/// Supports: integers, decimals, fractions, mixed numbers ("2 1/2"),
/// attached units ("250g"), parenthesized size qualifiers
/// ("1 (15 ounce) can …" → 1 × 15 oz), and bare counts ("2 eggs").
/// Returns `None` when the phrase does not start with a number.
///
/// ```
/// use culinaria_text::quantity::{parse_quantity, Unit};
///
/// let q = parse_quantity("2 1/2 cups flour, sifted").unwrap();
/// assert_eq!(q.unit, Unit::Millilitre);
/// assert_eq!(q.value, 600.0); // 2.5 × 240 ml
/// assert_eq!(q.rest, "flour, sifted");
///
/// assert!(parse_quantity("salt to taste").is_none());
/// ```
pub fn parse_quantity(phrase: &str) -> Option<Quantity> {
    let tokens: Vec<&str> = phrase.split_whitespace().collect();
    if tokens.is_empty() {
        return None;
    }
    let mut idx;

    // Leading amount: number, possibly a mixed fraction, or "250g".
    let mut amount;
    let mut attached: Option<(f64, Unit)> = None;
    if let Some(v) = parse_number(tokens[0]) {
        amount = v;
        idx = 1;
        // Mixed number: "2 1/2".
        if idx < tokens.len() && tokens[idx].contains('/') {
            if let Some(frac) = parse_number(tokens[idx]) {
                amount += frac;
                idx += 1;
            }
        }
    } else if let Some((num, unit_tok)) = split_attached_unit(tokens[0]) {
        amount = parse_number(&num)?;
        attached = lookup_unit(&unit_tok);
        attached?;
        idx = 1;
    } else {
        return None;
    }

    if let Some((factor, unit)) = attached {
        return Some(Quantity {
            value: amount * factor,
            unit,
            rest: tokens[idx..].join(" "),
        });
    }

    // Parenthesized size qualifier: "1 (15 ounce) can ...".
    if idx + 1 < tokens.len() && tokens[idx].starts_with('(') {
        let inner_num = tokens[idx].trim_start_matches('(');
        if let Some(size) = parse_number(inner_num) {
            let unit_tok = tokens[idx + 1].trim_end_matches(')');
            if let Some((factor, unit)) = lookup_unit(&unit_tok.to_lowercase()) {
                // Skip over "(15 ounce)" and an optional container word.
                let mut rest_idx = idx + 2;
                if rest_idx < tokens.len()
                    && [
                        "can", "cans", "package", "packages", "jar", "jars", "box", "boxes",
                    ]
                    .contains(&tokens[rest_idx].to_lowercase().as_str())
                {
                    rest_idx += 1;
                }
                return Some(Quantity {
                    value: amount * size * factor,
                    unit,
                    rest: tokens[rest_idx..].join(" "),
                });
            }
        }
    }

    // Unit token after the amount ("2 cups flour"); "fluid ounce" is a
    // volume despite "ounce" being mass.
    if idx < tokens.len() {
        let tok = tokens[idx].to_lowercase();
        if (tok == "fluid" || tok == "fl") && idx + 1 < tokens.len() {
            let next = tokens[idx + 1].to_lowercase();
            let clean = next.trim_end_matches('.').trim_end_matches('s');
            if clean == "ounce" || clean == "oz" {
                return Some(Quantity {
                    value: amount * 29.57,
                    unit: Unit::Millilitre,
                    rest: tokens[idx + 2..].join(" "),
                });
            }
        }
        if let Some((factor, unit)) = lookup_unit(&tok) {
            return Some(Quantity {
                value: amount * factor,
                unit,
                rest: tokens[idx + 1..].join(" "),
            });
        }
    }

    // Bare count: "2 eggs".
    Some(Quantity {
        value: amount,
        unit: Unit::Count,
        rest: tokens[idx..].join(" "),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(phrase: &str) -> Quantity {
        parse_quantity(phrase).unwrap_or_else(|| panic!("no quantity in {phrase:?}"))
    }

    #[test]
    fn volumes() {
        let v = q("2 cups flour");
        assert_eq!(v.unit, Unit::Millilitre);
        assert!((v.value - 480.0).abs() < 1e-9);
        assert_eq!(v.rest, "flour");

        assert!((q("1 tbsp olive oil").value - 15.0).abs() < 1e-9);
        assert!((q("3 teaspoons vanilla").value - 15.0).abs() < 1e-9);
        assert!((q("1 liter water").value - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn masses() {
        let m = q("250g butter");
        assert_eq!(m.unit, Unit::Gram);
        assert!((m.value - 250.0).abs() < 1e-9);
        assert_eq!(m.rest, "butter");

        assert!((q("1 pound beef").value - 453.6).abs() < 1e-9);
        assert!((q("2 kg potatoes").value - 2000.0).abs() < 1e-9);
        assert!((q("4 oz cheese").value - 113.4).abs() < 1e-9);
    }

    #[test]
    fn fractions_and_mixed_numbers() {
        assert!((q("1/2 cup milk").value - 120.0).abs() < 1e-9);
        assert!((q("2 1/2 cups sugar").value - 600.0).abs() < 1e-9);
        assert!((q("½ cup cream").value - 120.0).abs() < 1e-9);
        assert!((q("2.5 cups broth").value - 600.0).abs() < 1e-9);
    }

    #[test]
    fn counts() {
        let c = q("2 eggs");
        assert_eq!(c.unit, Unit::Count);
        assert_eq!(c.value, 2.0);
        assert_eq!(c.rest, "eggs");
        assert_eq!(q("3 ripe tomatoes, diced").rest, "ripe tomatoes, diced");
    }

    #[test]
    fn parenthesized_size() {
        let p = q("1 (15 ounce) can black beans");
        assert_eq!(p.unit, Unit::Gram);
        assert!((p.value - 15.0 * 28.35).abs() < 1e-6);
        assert_eq!(p.rest, "black beans");

        let two = q("2 (8 oz) packages cream cheese");
        assert!((two.value - 2.0 * 8.0 * 28.35).abs() < 1e-6);
        assert_eq!(two.rest, "cream cheese");
    }

    #[test]
    fn fluid_ounces_are_volume() {
        let f = q("6 fluid ounces milk");
        assert_eq!(f.unit, Unit::Millilitre);
        assert!((f.value - 6.0 * 29.57).abs() < 1e-6);
        assert_eq!(f.rest, "milk");
        let f2 = q("2 fl oz rum");
        assert_eq!(f2.unit, Unit::Millilitre);
    }

    #[test]
    fn no_leading_number() {
        assert!(parse_quantity("salt to taste").is_none());
        assert!(parse_quantity("").is_none());
        assert!(parse_quantity("a pinch of saffron").is_none());
    }

    #[test]
    fn degenerate_fractions() {
        assert!(parse_quantity("1/0 cup oops").is_none());
    }

    #[test]
    fn plural_and_dotted_units() {
        assert!((q("2 tbsps. honey").value - 30.0).abs() < 1e-9);
        assert!((q("3 lbs chicken").value - 3.0 * 453.6).abs() < 1e-6);
    }
}
