//! Damerau–Levenshtein edit distance (optimal string alignment).
//!
//! Used to absorb spelling variants the paper calls out explicitly:
//! whiskey/whisky, chili/chile, asafoetida/asafetida. Transpositions
//! count as a single edit, which matters for keyboard-swap variants.

/// Optimal-string-alignment Damerau–Levenshtein distance between two
/// strings, computed over `char`s (not bytes).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (m, n) = (a.len(), b.len());
    if m == 0 {
        return n;
    }
    if n == 0 {
        return m;
    }

    // Three-row rolling DP (previous-previous needed for transpositions).
    let mut prev_prev = vec![0usize; n + 1];
    let mut prev: Vec<usize> = (0..=n).collect();
    let mut curr = vec![0usize; n + 1];

    for i in 1..=m {
        curr[0] = i;
        for j in 1..=n {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(curr[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev_prev[j - 2] + 1); // transposition
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev_prev, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

/// True if the distance between `a` and `b` is at most `max`, with an
/// early length-difference reject (cheap guard for the hot path).
pub fn within_distance(a: &str, b: &str, max: usize) -> bool {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return false;
    }
    damerau_levenshtein(a, b) <= max
}

/// Normalized similarity in [0, 1]: 1 − distance / max-length. Both
/// empty strings are defined as similarity 1.
pub fn similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_empty() {
        assert_eq!(damerau_levenshtein("garlic", "garlic"), 0);
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "abcd"), 4);
    }

    #[test]
    fn paper_spelling_variants_are_close() {
        assert_eq!(damerau_levenshtein("whiskey", "whisky"), 1);
        assert_eq!(damerau_levenshtein("chili", "chile"), 1);
        assert_eq!(damerau_levenshtein("asafoetida", "asafetida"), 1);
        assert_eq!(damerau_levenshtein("yoghurt", "yogurt"), 1);
    }

    #[test]
    fn substitution_insertion_deletion() {
        assert_eq!(damerau_levenshtein("kitten", "sitten"), 1);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("flour", "floured"), 2);
    }

    #[test]
    fn transposition_counts_one() {
        assert_eq!(damerau_levenshtein("recieve", "receive"), 1);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        // Plain Levenshtein would give 2 for both.
    }

    #[test]
    fn unicode_chars() {
        assert_eq!(damerau_levenshtein("jalapeño", "jalapeno"), 1);
        assert_eq!(damerau_levenshtein("crème", "creme"), 1);
    }

    #[test]
    fn within_distance_guard() {
        assert!(within_distance("whiskey", "whisky", 1));
        assert!(!within_distance("whiskey", "wine", 2));
        // Length-difference early reject.
        assert!(!within_distance("a", "abcdef", 2));
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
        let s = similarity("whiskey", "whisky");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn symmetric() {
        let pairs = [("chili", "chile"), ("tomato", "tomatoes"), ("a", "ab")];
        for (a, b) in pairs {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["chili", "chile", "child", "chilled"];
        for a in words {
            for b in words {
                for c in words {
                    let ab = damerau_levenshtein(a, b);
                    let bc = damerau_levenshtein(b, c);
                    let ac = damerau_levenshtein(a, c);
                    assert!(ac <= ab + bc, "{a} {b} {c}");
                }
            }
        }
    }
}
