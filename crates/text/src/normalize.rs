//! Phrase normalization: lowercasing, punctuation stripping, whitespace
//! collapsing, and tokenization.
//!
//! This is step 1 of the paper's aliasing protocol. Hyphens and slashes
//! are treated as separators ("extra-virgin" → "extra virgin",
//! "salt/pepper" → "salt pepper"); apostrophes are dropped so
//! possessives collapse onto their stem ("baker's" → "bakers");
//! parenthetical content is kept (its words are tokenized like any
//! other), since annotations such as "(fresh)" are removed later by the
//! culinary stopword list.

/// Lowercase a phrase, map punctuation/special characters to spaces
/// (apostrophes are removed entirely), and collapse whitespace runs.
pub fn normalize_phrase(phrase: &str) -> String {
    let mut out = String::with_capacity(phrase.len());
    normalize_phrase_into(phrase, &mut out);
    out
}

/// [`normalize_phrase`] writing into a caller-owned buffer, so hot
/// loops (the alias resolver's ingestion path) can reuse one allocation
/// across phrases. The buffer is cleared first.
pub fn normalize_phrase_into(phrase: &str, out: &mut String) {
    out.clear();
    let mut last_space = true;
    for ch in phrase.chars() {
        let lower = ch.to_lowercase();
        for c in lower {
            if c == '\'' || c == '’' {
                // Drop apostrophes: "baker's" → "bakers".
                continue;
            }
            let mapped = if c.is_alphanumeric() { Some(c) } else { None };
            match mapped {
                Some(c) => {
                    out.push(c);
                    last_space = false;
                }
                None => {
                    if !last_space {
                        out.push(' ');
                        last_space = true;
                    }
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
}

/// Tokenize a phrase: normalize, split on whitespace, and drop tokens
/// that are purely numeric (quantities like "2" or "1/2" — the slash has
/// already become a separator, leaving bare numbers).
pub fn tokenize(phrase: &str) -> Vec<String> {
    normalize_phrase(phrase)
        .split_whitespace()
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .map(str::to_owned)
        .collect()
}

/// Tokenize but keep numeric tokens (used by quantity-aware tooling).
pub fn tokenize_keep_numbers(phrase: &str) -> Vec<String> {
    normalize_phrase(phrase)
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            normalize_phrase("2 Jalapeno Peppers, roasted & slit!"),
            "2 jalapeno peppers roasted slit"
        );
    }

    #[test]
    fn hyphens_and_slashes_split() {
        assert_eq!(
            normalize_phrase("extra-virgin olive-oil"),
            "extra virgin olive oil"
        );
        assert_eq!(normalize_phrase("salt/pepper"), "salt pepper");
    }

    #[test]
    fn apostrophes_removed_not_split() {
        assert_eq!(normalize_phrase("baker's yeast"), "bakers yeast");
        assert_eq!(
            normalize_phrase("confectioner’s sugar"),
            "confectioners sugar"
        );
    }

    #[test]
    fn into_variant_reuses_buffer() {
        let mut buf = String::from("previous contents");
        normalize_phrase_into("Salt & Pepper", &mut buf);
        assert_eq!(buf, "salt pepper");
        normalize_phrase_into("", &mut buf);
        assert_eq!(buf, "");
    }

    #[test]
    fn whitespace_collapsed() {
        assert_eq!(normalize_phrase("  a   b\t c \n"), "a b c");
        assert_eq!(normalize_phrase(""), "");
        assert_eq!(normalize_phrase("..."), "");
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(normalize_phrase("Crème Fraîche"), "crème fraîche");
        assert_eq!(normalize_phrase("JALAPEÑO"), "jalapeño");
    }

    #[test]
    fn tokenize_drops_pure_numbers() {
        assert_eq!(
            tokenize("2 cups flour, 1/2 teaspoon salt"),
            vec!["cups", "flour", "teaspoon", "salt"]
        );
    }

    #[test]
    fn tokenize_keeps_alphanumeric_mixtures() {
        // "7up" style tokens are not pure numbers and survive.
        assert_eq!(tokenize("7up soda"), vec!["7up", "soda"]);
    }

    #[test]
    fn tokenize_keep_numbers_keeps_them() {
        assert_eq!(tokenize_keep_numbers("2 eggs"), vec!["2", "eggs"]);
    }

    #[test]
    fn parenthetical_content_tokenized() {
        assert_eq!(
            tokenize("1 (15 ounce) can black beans"),
            vec!["ounce", "can", "black", "beans"]
        );
    }
}
