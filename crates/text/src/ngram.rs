//! N-gram extraction over token slices.
//!
//! The paper builds n-grams up to 6 tokens from cleaned ingredient
//! phrases to find multi-word ingredients ("extra virgin olive oil") and
//! to mine frequently co-occurring unknown phrases for curation.
//!
//! Both extractors *borrow*: an n-gram is a `&[String]` window into the
//! caller's token slice, so enumerating every n-gram of a phrase
//! allocates nothing. [`ngram_strings`] remains as the owned compat
//! wrapper for curation mining, which wants joined keys anyway.

/// All contiguous n-grams of exactly `n` tokens, in order of occurrence,
/// as borrowed windows. Empty when `n == 0` or `n > tokens.len()`.
pub fn ngrams(tokens: &[String], n: usize) -> std::slice::Windows<'_, String> {
    // `windows(0)` panics and `windows(len + 1)` is empty, so map the
    // degenerate `n == 0` request onto the empty iterator.
    let n = if n == 0 { tokens.len() + 1 } else { n };
    tokens.windows(n)
}

/// All n-grams for `n` in `1..=max_n`, longest first (the resolution
/// order the aliasing pipeline wants: prefer the most specific match),
/// as borrowed windows.
pub fn ngrams_up_to(tokens: &[String], max_n: usize) -> impl Iterator<Item = &[String]> {
    let top = max_n.min(tokens.len());
    (1..=top).rev().flat_map(move |n| tokens.windows(n))
}

/// N-grams joined into space-separated strings, longest first. The only
/// allocating form — kept for curation mining
/// ([`mine_frequent_ngrams`](crate::alias::mine_frequent_ngrams)),
/// which needs owned keys.
pub fn ngram_strings(tokens: &[String], max_n: usize) -> Vec<String> {
    ngrams_up_to(tokens, max_n).map(|g| g.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_n() {
        let t = toks(&["a", "b", "c"]);
        let two: Vec<&[String]> = ngrams(&t, 2).collect();
        assert_eq!(two, vec![&t[0..2], &t[1..3]]);
        let three: Vec<&[String]> = ngrams(&t, 3).collect();
        assert_eq!(three, vec![&t[..]]);
        assert_eq!(ngrams(&t, 4).count(), 0);
        assert_eq!(ngrams(&t, 0).count(), 0);
        assert_eq!(ngrams(&[], 0).count(), 0);
    }

    #[test]
    fn windows_borrow_not_clone() {
        let t = toks(&["a", "b", "c"]);
        for w in ngrams(&t, 2) {
            // Same backing storage: the window points into `t`.
            assert!(std::ptr::eq(
                &w[0],
                &t[t.iter().position(|x| x == &w[0]).unwrap()]
            ));
        }
    }

    #[test]
    fn up_to_orders_longest_first() {
        let t = toks(&["olive", "oil"]);
        let grams = ngram_strings(&t, 6);
        assert_eq!(grams, vec!["olive oil", "olive", "oil"]);
    }

    #[test]
    fn up_to_respects_max() {
        let t = toks(&["a", "b", "c", "d"]);
        let grams = ngram_strings(&t, 2);
        assert_eq!(grams, vec!["a b", "b c", "c d", "a", "b", "c", "d"]);
    }

    #[test]
    fn counts_are_correct() {
        // For m tokens and max n, count = Σ_{k=1..min(n,m)} (m − k + 1).
        let t = toks(&["a", "b", "c", "d", "e", "f", "g"]);
        let expected: usize = (1..=6).map(|k| 7 - k + 1).sum();
        assert_eq!(ngrams_up_to(&t, 6).count(), expected);
    }

    #[test]
    fn empty_tokens() {
        assert_eq!(ngrams_up_to(&[], 6).count(), 0);
    }
}
