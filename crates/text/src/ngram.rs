//! N-gram extraction over token slices.
//!
//! The paper builds n-grams up to 6 tokens from cleaned ingredient
//! phrases to find multi-word ingredients ("extra virgin olive oil") and
//! to mine frequently co-occurring unknown phrases for curation.

/// All contiguous n-grams of exactly `n` tokens, in order of occurrence.
/// Empty when `n == 0` or `n > tokens.len()`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<Vec<String>> {
    if n == 0 || n > tokens.len() {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.to_vec()).collect()
}

/// All n-grams for `n` in `1..=max_n`, longest first (the resolution
/// order the aliasing pipeline wants: prefer the most specific match).
pub fn ngrams_up_to(tokens: &[String], max_n: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let top = max_n.min(tokens.len());
    for n in (1..=top).rev() {
        out.extend(ngrams(tokens, n));
    }
    out
}

/// N-grams joined into space-separated strings, longest first.
pub fn ngram_strings(tokens: &[String], max_n: usize) -> Vec<String> {
    ngrams_up_to(tokens, max_n)
        .into_iter()
        .map(|g| g.join(" "))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_n() {
        let t = toks(&["a", "b", "c"]);
        assert_eq!(ngrams(&t, 2), vec![toks(&["a", "b"]), toks(&["b", "c"])]);
        assert_eq!(ngrams(&t, 3), vec![toks(&["a", "b", "c"])]);
        assert!(ngrams(&t, 4).is_empty());
        assert!(ngrams(&t, 0).is_empty());
    }

    #[test]
    fn up_to_orders_longest_first() {
        let t = toks(&["olive", "oil"]);
        let grams = ngram_strings(&t, 6);
        assert_eq!(grams, vec!["olive oil", "olive", "oil"]);
    }

    #[test]
    fn up_to_respects_max() {
        let t = toks(&["a", "b", "c", "d"]);
        let grams = ngram_strings(&t, 2);
        assert_eq!(grams, vec!["a b", "b c", "c d", "a", "b", "c", "d"]);
    }

    #[test]
    fn counts_are_correct() {
        // For m tokens and max n, count = Σ_{k=1..min(n,m)} (m − k + 1).
        let t = toks(&["a", "b", "c", "d", "e", "f", "g"]);
        let grams = ngrams_up_to(&t, 6);
        let expected: usize = (1..=6).map(|k| 7 - k + 1).sum();
        assert_eq!(grams.len(), expected);
    }

    #[test]
    fn empty_tokens() {
        assert!(ngrams_up_to(&[], 6).is_empty());
    }
}
