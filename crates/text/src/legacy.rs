//! The pre-trie alias matcher, kept as a parity reference.
//!
//! [`LegacyAliasResolver`] is the original string-join matcher: for
//! every phrase position it materializes each candidate n-gram with
//! `join(" ")` and probes a `HashMap<String, _>` per candidate, and its
//! fuzzy pass scans length-adjacent buckets running Damerau–Levenshtein
//! against every key. It is deliberately **unoptimized and frozen**:
//! `bench_alias` times the trie resolver against it, and a property
//! test plus the harness's corpus sweep assert the two produce
//! byte-identical [`Resolution`]s. Do not "improve" this module — its
//! value is being the independently-written specification.

use std::collections::{HashMap, HashSet};

use crate::alias::{MatchKind, Resolution, ResolvedMatch};
use crate::edit_distance::within_distance;
use crate::normalize::tokenize;
use crate::singularize::singularize;
use crate::stopwords::is_stopword;

/// The original ingredient lexicon and matching engine (string-keyed).
#[derive(Debug, Clone, Default)]
pub struct LegacyAliasResolver {
    /// Normalized canonical names (set semantics).
    canonical: HashSet<String>,
    /// Normalized synonym → canonical name.
    synonyms: HashMap<String, String>,
    /// Length-bucketed single-token keys for the fuzzy pass:
    /// `fuzzy_index[len]` holds `(key, canonical)` pairs.
    fuzzy_index: HashMap<usize, Vec<(String, String)>>,
    /// Every token occurring in a multi-word lexicon entry (stopword
    /// exemption set).
    lexicon_tokens: HashSet<String>,
    /// Maximum n-gram length tried (paper: 6).
    max_ngram: usize,
    /// Maximum edit distance for the fuzzy pass.
    fuzzy_max_distance: usize,
    /// Minimum token length eligible for fuzzy matching.
    fuzzy_min_len: usize,
}

impl LegacyAliasResolver {
    /// A resolver with the paper's parameters: n-grams up to 6, fuzzy
    /// distance 1 for tokens of at least 5 characters.
    pub fn new() -> Self {
        LegacyAliasResolver {
            canonical: HashSet::new(),
            synonyms: HashMap::new(),
            fuzzy_index: HashMap::new(),
            lexicon_tokens: HashSet::new(),
            max_ngram: 6,
            fuzzy_max_distance: 1,
            fuzzy_min_len: 5,
        }
    }

    /// Normalize a lexicon entry the same way phrases are normalized.
    fn canon_key(name: &str) -> String {
        tokenize(name)
            .iter()
            .map(|t| singularize(t))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Register a canonical ingredient name (possibly multi-word).
    pub fn add_canonical(&mut self, name: &str) -> String {
        let key = Self::canon_key(name);
        self.canonical.insert(key.clone());
        self.index_for_fuzzy(&key, &key);
        self.remember_tokens(&key);
        key
    }

    fn remember_tokens(&mut self, key: &str) {
        if !key.contains(' ') {
            return;
        }
        for tok in key.split(' ') {
            self.lexicon_tokens.insert(tok.to_owned());
        }
    }

    /// Register `synonym` as an alias of `canonical`.
    pub fn add_synonym(&mut self, synonym: &str, canonical: &str) {
        let skey = Self::canon_key(synonym);
        let ckey = Self::canon_key(canonical);
        self.index_for_fuzzy(&skey, &ckey);
        self.remember_tokens(&skey);
        self.synonyms.insert(skey, ckey);
    }

    fn index_for_fuzzy(&mut self, key: &str, canonical: &str) {
        if !key.contains(' ') && key.chars().count() >= self.fuzzy_min_len {
            self.fuzzy_index
                .entry(key.chars().count())
                .or_default()
                .push((key.to_owned(), canonical.to_owned()));
        }
    }

    /// Number of canonical entries.
    pub fn n_canonical(&self) -> usize {
        self.canonical.len()
    }

    /// Number of synonyms.
    pub fn n_synonyms(&self) -> usize {
        self.synonyms.len()
    }

    /// True if the normalized form of `name` is a canonical entry.
    pub fn is_canonical(&self, name: &str) -> bool {
        self.canonical.contains(&Self::canon_key(name))
    }

    /// Exact/synonym lookup of an already-normalized n-gram.
    fn lookup(&self, gram: &str) -> Option<(String, MatchKind)> {
        if self.canonical.contains(gram) {
            return Some((gram.to_owned(), MatchKind::Exact));
        }
        if let Some(c) = self.synonyms.get(gram) {
            return Some((c.clone(), MatchKind::Synonym));
        }
        None
    }

    /// Fuzzy lookup of a single token against length-adjacent buckets.
    fn lookup_fuzzy(&self, token: &str) -> Option<String> {
        let len = token.chars().count();
        if len < self.fuzzy_min_len {
            return None;
        }
        let lo = len.saturating_sub(self.fuzzy_max_distance);
        let hi = len + self.fuzzy_max_distance;
        for bucket_len in lo..=hi {
            if let Some(bucket) = self.fuzzy_index.get(&bucket_len) {
                for (key, canonical) in bucket {
                    if within_distance(token, key, self.fuzzy_max_distance) {
                        return Some(canonical.clone());
                    }
                }
            }
        }
        None
    }

    /// Clean a phrase into match-ready tokens.
    pub fn clean_tokens(&self, phrase: &str) -> Vec<String> {
        tokenize(phrase)
            .into_iter()
            .map(|t| singularize(&t))
            .filter(|t| !is_stopword(t) || self.lexicon_tokens.contains(t))
            .collect()
    }

    /// Resolve a phrase: greedy longest-n-gram matching, left to right.
    pub fn resolve(&self, phrase: &str) -> Resolution {
        let tokens = self.clean_tokens(phrase);
        let mut matches = Vec::new();
        let mut unresolved = Vec::new();
        let mut pos = 0;
        'outer: while pos < tokens.len() {
            let top = self.max_ngram.min(tokens.len() - pos);
            for n in (1..=top).rev() {
                let gram = tokens[pos..pos + n].join(" ");
                if let Some((canonical, kind)) = self.lookup(&gram) {
                    matches.push(ResolvedMatch {
                        canonical,
                        matched_text: gram,
                        kind,
                    });
                    pos += n;
                    continue 'outer;
                }
            }
            // Single-token fuzzy fallback.
            if let Some(canonical) = self.lookup_fuzzy(&tokens[pos]) {
                matches.push(ResolvedMatch {
                    canonical,
                    matched_text: tokens[pos].clone(),
                    kind: MatchKind::Fuzzy,
                });
            } else {
                unresolved.push(tokens[pos].clone());
            }
            pos += 1;
        }
        Resolution {
            matches,
            unresolved,
        }
    }

    /// Convenience: just the matches of [`LegacyAliasResolver::resolve`].
    pub fn resolve_phrase(&self, phrase: &str) -> Vec<ResolvedMatch> {
        self.resolve(phrase).matches
    }
}
