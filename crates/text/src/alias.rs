//! The alias-resolution pipeline: free-text phrase → canonical
//! ingredients.
//!
//! [`AliasResolver`] holds the curated ingredient lexicon (canonical
//! names, possibly multi-word) and a synonym table (bun → bread,
//! curd → yogurt, …). Resolution follows the paper's protocol:
//! normalize → drop stopwords → singularize → greedy longest-n-gram
//! matching (n ≤ 6) against the lexicon, with a Damerau–Levenshtein
//! fallback for single-token spelling variants, and explicit flagging of
//! unresolved tokens for manual curation.

use std::collections::HashMap;

use crate::edit_distance::within_distance;
use crate::normalize::tokenize;
use crate::singularize::singularize;
use crate::stopwords::is_stopword;

/// How a piece of text was matched to a canonical ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// The n-gram equals a canonical name.
    Exact,
    /// The n-gram equals a registered synonym of a canonical name.
    Synonym,
    /// A single token within edit distance 1 of a canonical name or
    /// synonym (spelling variant).
    Fuzzy,
}

/// One resolved span of a phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedMatch {
    /// The canonical ingredient name.
    pub canonical: String,
    /// The (cleaned) text that matched.
    pub matched_text: String,
    /// How the match was found.
    pub kind: MatchKind,
}

/// Full result of resolving one phrase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Resolution {
    /// Matched ingredients, in phrase order.
    pub matches: Vec<ResolvedMatch>,
    /// Cleaned tokens that failed to match anything — the paper labels
    /// these for manual curation.
    pub unresolved: Vec<String>,
}

/// The ingredient lexicon and matching engine.
#[derive(Debug, Clone, Default)]
pub struct AliasResolver {
    /// Normalized canonical name → itself (set semantics, map for reuse).
    canonical: HashMap<String, ()>,
    /// Normalized synonym → canonical name.
    synonyms: HashMap<String, String>,
    /// Length-bucketed single-token keys for the fuzzy pass:
    /// `fuzzy_index[len]` holds `(key, canonical)` pairs.
    fuzzy_index: HashMap<usize, Vec<(String, String)>>,
    /// Every token occurring in a lexicon entry. Tokens in this set are
    /// exempt from stopword removal so entries like "virgin olive oil"
    /// or "half half" stay matchable even when their words are generic
    /// culinary stopwords.
    lexicon_tokens: std::collections::HashSet<String>,
    /// Maximum n-gram length tried (paper: 6).
    max_ngram: usize,
    /// Maximum edit distance for the fuzzy pass.
    fuzzy_max_distance: usize,
    /// Minimum token length eligible for fuzzy matching (short tokens
    /// produce too many false positives).
    fuzzy_min_len: usize,
}

impl AliasResolver {
    /// A resolver with the paper's parameters: n-grams up to 6, fuzzy
    /// distance 1 for tokens of at least 5 characters.
    pub fn new() -> Self {
        AliasResolver {
            canonical: HashMap::new(),
            synonyms: HashMap::new(),
            fuzzy_index: HashMap::new(),
            lexicon_tokens: std::collections::HashSet::new(),
            max_ngram: 6,
            fuzzy_max_distance: 1,
            fuzzy_min_len: 5,
        }
    }

    /// Normalize a lexicon entry the same way phrases are normalized:
    /// tokenize, singularize (stopwords are *kept* — curated names
    /// should not contain any).
    fn canon_key(name: &str) -> String {
        tokenize(name)
            .iter()
            .map(|t| singularize(t))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Register a canonical ingredient name (possibly multi-word).
    /// Returns the normalized key under which it was stored.
    pub fn add_canonical(&mut self, name: &str) -> String {
        let key = Self::canon_key(name);
        self.canonical.insert(key.clone(), ());
        self.index_for_fuzzy(&key, &key);
        self.remember_tokens(&key);
        key
    }

    fn remember_tokens(&mut self, key: &str) {
        // Only multi-word entries earn the stopword exemption: a
        // single-word entry that doubles as a culinary stopword
        // ("clove" in "2 cloves garlic") is overwhelmingly the
        // container/measure sense in free text.
        if !key.contains(' ') {
            return;
        }
        for tok in key.split(' ') {
            self.lexicon_tokens.insert(tok.to_owned());
        }
    }

    /// Register `synonym` as an alias of `canonical` (the canonical need
    /// not be registered yet; matches resolve to its normalized form).
    pub fn add_synonym(&mut self, synonym: &str, canonical: &str) {
        let skey = Self::canon_key(synonym);
        let ckey = Self::canon_key(canonical);
        self.index_for_fuzzy(&skey, &ckey);
        self.remember_tokens(&skey);
        self.synonyms.insert(skey, ckey);
    }

    fn index_for_fuzzy(&mut self, key: &str, canonical: &str) {
        if !key.contains(' ') && key.chars().count() >= self.fuzzy_min_len {
            self.fuzzy_index
                .entry(key.chars().count())
                .or_default()
                .push((key.to_owned(), canonical.to_owned()));
        }
    }

    /// Number of canonical entries.
    pub fn n_canonical(&self) -> usize {
        self.canonical.len()
    }

    /// Number of synonyms.
    pub fn n_synonyms(&self) -> usize {
        self.synonyms.len()
    }

    /// True if the normalized form of `name` is a canonical entry.
    pub fn is_canonical(&self, name: &str) -> bool {
        self.canonical.contains_key(&Self::canon_key(name))
    }

    /// Exact/synonym lookup of an already-normalized n-gram.
    fn lookup(&self, gram: &str) -> Option<(String, MatchKind)> {
        if self.canonical.contains_key(gram) {
            return Some((gram.to_owned(), MatchKind::Exact));
        }
        if let Some(c) = self.synonyms.get(gram) {
            return Some((c.clone(), MatchKind::Synonym));
        }
        None
    }

    /// Fuzzy lookup of a single token against length-adjacent buckets.
    fn lookup_fuzzy(&self, token: &str) -> Option<String> {
        let len = token.chars().count();
        if len < self.fuzzy_min_len {
            return None;
        }
        let lo = len.saturating_sub(self.fuzzy_max_distance);
        let hi = len + self.fuzzy_max_distance;
        for bucket_len in lo..=hi {
            if let Some(bucket) = self.fuzzy_index.get(&bucket_len) {
                for (key, canonical) in bucket {
                    if within_distance(token, key, self.fuzzy_max_distance) {
                        return Some(canonical.clone());
                    }
                }
            }
        }
        None
    }

    /// Clean a phrase into match-ready tokens: tokenize, singularize,
    /// then drop stopwords — except tokens that occur in a lexicon
    /// entry ("virgin olive oil", "half half"), which must survive
    /// cleaning to stay matchable.
    pub fn clean_tokens(&self, phrase: &str) -> Vec<String> {
        tokenize(phrase)
            .into_iter()
            .map(|t| singularize(&t))
            .filter(|t| !is_stopword(t) || self.lexicon_tokens.contains(t))
            .collect()
    }

    /// Resolve a phrase: greedy longest-n-gram matching, left to right.
    pub fn resolve(&self, phrase: &str) -> Resolution {
        let tokens = self.clean_tokens(phrase);
        let mut matches = Vec::new();
        let mut unresolved = Vec::new();
        let mut pos = 0;
        'outer: while pos < tokens.len() {
            let top = self.max_ngram.min(tokens.len() - pos);
            for n in (1..=top).rev() {
                let gram = tokens[pos..pos + n].join(" ");
                if let Some((canonical, kind)) = self.lookup(&gram) {
                    matches.push(ResolvedMatch {
                        canonical,
                        matched_text: gram,
                        kind,
                    });
                    pos += n;
                    continue 'outer;
                }
            }
            // Single-token fuzzy fallback.
            if let Some(canonical) = self.lookup_fuzzy(&tokens[pos]) {
                matches.push(ResolvedMatch {
                    canonical,
                    matched_text: tokens[pos].clone(),
                    kind: MatchKind::Fuzzy,
                });
            } else {
                unresolved.push(tokens[pos].clone());
            }
            pos += 1;
        }
        Resolution {
            matches,
            unresolved,
        }
    }

    /// Convenience: just the matches of [`AliasResolver::resolve`].
    pub fn resolve_phrase(&self, phrase: &str) -> Vec<ResolvedMatch> {
        self.resolve(phrase).matches
    }
}

/// Mine candidate new-lexicon entries from a corpus of unresolved
/// phrases: counts every n-gram (n ≤ `max_n`) across the phrases and
/// returns those occurring at least `min_count` times, most frequent
/// first. This is the paper's curation aid for "commonly occurring
/// ingredients which were either not present in the database or were
/// variations of existing entities".
pub fn mine_frequent_ngrams(
    phrases: &[String],
    max_n: usize,
    min_count: usize,
) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for phrase in phrases {
        let tokens: Vec<String> = tokenize(phrase)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .map(|t| singularize(&t))
            .collect();
        for gram in crate::ngram::ngram_strings(&tokens, max_n) {
            *counts.entry(gram).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver() -> AliasResolver {
        let mut r = AliasResolver::new();
        r.add_canonical("tomato");
        r.add_canonical("olive oil");
        r.add_canonical("extra virgin olive oil");
        r.add_canonical("jalapeno pepper");
        r.add_canonical("bread");
        r.add_canonical("yogurt");
        r.add_canonical("whiskey");
        r.add_canonical("chili");
        r.add_canonical("garlic");
        r.add_synonym("bun", "bread");
        r.add_synonym("curd", "yogurt");
        r.add_synonym("chile", "chili");
        r
    }

    #[test]
    fn exact_single_token() {
        let m = resolver().resolve_phrase("3 ripe tomatoes, diced");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "tomato");
        assert_eq!(m[0].kind, MatchKind::Exact);
    }

    #[test]
    fn longest_match_wins() {
        // "extra" and "virgin" are culinary stopwords, but both occur
        // in the multi-word lexicon entry "extra virgin olive oil", so
        // they survive cleaning and the longest (4-gram) entry matches
        // — not the embedded "olive oil".
        let mut r = resolver();
        r.add_canonical("virgin olive oil");
        let m = r.resolve_phrase("2 tbsp extra-virgin olive oil");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "extra virgin olive oil");

        // Without the longer entries, the stopwords fall away and the
        // bare "olive oil" still matches.
        let mut r2 = AliasResolver::new();
        r2.add_canonical("olive oil");
        let m = r2.resolve_phrase("2 tbsp extra-virgin olive oil");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "olive oil");
    }

    #[test]
    fn multiword_before_parts() {
        let m = resolver().resolve_phrase("olive oil for frying");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "olive oil");
        assert_eq!(m[0].matched_text, "olive oil");
    }

    #[test]
    fn synonyms_map_to_canonical() {
        let m = resolver().resolve_phrase("1 bun");
        assert_eq!(m[0].canonical, "bread");
        assert_eq!(m[0].kind, MatchKind::Synonym);
        let m = resolver().resolve_phrase("250g curd");
        assert_eq!(m[0].canonical, "yogurt");
    }

    #[test]
    fn plural_and_case_insensitive() {
        let m = resolver().resolve_phrase("Jalapeno Peppers");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "jalapeno pepper");
    }

    #[test]
    fn fuzzy_spelling_variants() {
        let m = resolver().resolve_phrase("a dram of whisky");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "whiskey");
        assert_eq!(m[0].kind, MatchKind::Fuzzy);
    }

    #[test]
    fn fuzzy_requires_min_length() {
        let mut r = AliasResolver::new();
        r.add_canonical("rice");
        // "rise" is within distance 1 of "rice" but too short for fuzzy.
        let res = r.resolve("rise");
        assert!(res.matches.is_empty());
        assert_eq!(res.unresolved, vec!["rise"]);
    }

    #[test]
    fn unresolved_flagged() {
        let res = resolver().resolve("2 cups unobtainium flakes");
        assert!(res.matches.is_empty());
        assert_eq!(res.unresolved, vec!["unobtainium", "flake"]);
    }

    #[test]
    fn mixed_resolution() {
        let res = resolver().resolve("garlic and xyzzy with chile");
        let canon: Vec<&str> = res.matches.iter().map(|m| m.canonical.as_str()).collect();
        assert_eq!(canon, vec!["garlic", "chili"]);
        assert_eq!(res.unresolved, vec!["xyzzy"]);
    }

    #[test]
    fn paper_example_phrase() {
        let m = resolver().resolve_phrase("2 jalapeno peppers, roasted and slit");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "jalapeno pepper");
    }

    #[test]
    fn counts_reported() {
        let r = resolver();
        assert_eq!(r.n_canonical(), 9);
        assert_eq!(r.n_synonyms(), 3);
        assert!(r.is_canonical("Tomatoes"));
        assert!(!r.is_canonical("pineapple"));
    }

    #[test]
    fn mining_finds_common_unknowns() {
        let phrases: Vec<String> = vec![
            "2 cups panko crumbs".into(),
            "panko crumbs for coating".into(),
            "1 cup panko crumbs, divided".into(),
            "something else".into(),
        ];
        let mined = mine_frequent_ngrams(&phrases, 6, 3);
        assert!(mined.iter().any(|(g, c)| g == "panko crumb" && *c == 3));
        // Rare grams excluded.
        assert!(!mined.iter().any(|(g, _)| g == "something else"));
    }

    #[test]
    fn empty_phrase() {
        let res = resolver().resolve("");
        assert!(res.matches.is_empty());
        assert!(res.unresolved.is_empty());
    }
}
