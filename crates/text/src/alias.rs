//! The alias-resolution pipeline: free-text phrase → canonical
//! ingredients.
//!
//! [`AliasResolver`] holds the curated ingredient lexicon (canonical
//! names, possibly multi-word) and a synonym table (bun → bread,
//! curd → yogurt, …). Resolution follows the paper's protocol:
//! normalize → drop stopwords → singularize → greedy longest-n-gram
//! matching (n ≤ 6) against the lexicon, with a Damerau–Levenshtein
//! fallback for single-token spelling variants, and explicit flagging of
//! unresolved tokens for manual curation.
//!
//! # Engine layout (the ingestion hot path)
//!
//! The matcher is an **interned-token phrase trie** rather than a
//! string-keyed hash map:
//!
//! * a [`TokenInterner`] maps every token occurring in a lexicon entry
//!   to a dense `u32` id;
//! * lexicon entries (canonical names and synonyms) are id-sequences in
//!   a flat trie — one arena of nodes, each with a sorted transition
//!   list probed by binary search;
//! * [`AliasResolver::resolve_with`] walks token-id windows of the
//!   cleaned phrase directly down the trie, so the greedy
//!   longest-match-first scan needs **no n-gram materialization, no
//!   `join(" ")`, and no per-candidate string hashing** — the costs
//!   the legacy matcher ([`crate::legacy`]) pays for every candidate;
//! * the fuzzy pass is a precomputed **deletion-neighborhood index**
//!   (SymSpell-style): each indexed single-token key is bucketed under
//!   itself and its distance-1 deletions, so Damerau–Levenshtein runs
//!   only on bucket collisions instead of every length-adjacent key;
//! * a bounded memo cache in [`ResolveScratch`] short-circuits repeated
//!   ingredient lines — real corpora are highly duplicated.
//!
//! Cleaning reuses caller-owned buffers ([`ResolveScratch`]), so a
//! steady-state import loop allocates only for the `Resolution`s it
//! returns (and not even those on memo hits' cache-internal storage).

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

use crate::edit_distance::within_distance;
use crate::normalize::{normalize_phrase_into, tokenize};
use crate::singularize::{singularize, singularized};
use crate::stopwords::is_stopword;

/// How a piece of text was matched to a canonical ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// The n-gram equals a canonical name.
    Exact,
    /// The n-gram equals a registered synonym of a canonical name.
    Synonym,
    /// A single token within edit distance 1 of a canonical name or
    /// synonym (spelling variant).
    Fuzzy,
}

/// One resolved span of a phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedMatch {
    /// The canonical ingredient name.
    pub canonical: String,
    /// The (cleaned) text that matched.
    pub matched_text: String,
    /// How the match was found.
    pub kind: MatchKind,
}

/// Full result of resolving one phrase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Resolution {
    /// Matched ingredients, in phrase order.
    pub matches: Vec<ResolvedMatch>,
    /// Cleaned tokens that failed to match anything — the paper labels
    /// these for manual curation.
    pub unresolved: Vec<String>,
}

/// Sentinel id for a phrase token that occurs in no lexicon entry: it
/// can never advance the trie, so the walk rejects it immediately.
const NO_TOKEN: u32 = u32::MAX;

/// Dense string interner: token text → `u32` id, id → text.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl TokenInterner {
    /// Id of `tok`, allocating a new one on first sight.
    pub fn intern(&mut self, tok: &str) -> u32 {
        if let Some(&id) = self.ids.get(tok) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(tok.to_owned(), id);
        self.strings.push(tok.to_owned());
        id
    }

    /// Id of `tok` if it has been interned.
    pub fn get(&self, tok: &str) -> Option<u32> {
        self.ids.get(tok).copied()
    }

    /// The text of an interned id.
    pub fn text(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One node of the flat phrase trie. Transitions are kept sorted by
/// token id for binary-search probing; terminal payloads point into the
/// resolver's canonical-name table.
#[derive(Debug, Clone, Default)]
struct TrieNode {
    /// Sorted `(token id, child node index)` transitions.
    edges: Vec<(u32, u32)>,
    /// Path spells a canonical name → its canonical-table index.
    exact: Option<u32>,
    /// Path spells a synonym → the target's canonical-table index.
    synonym: Option<u32>,
}

/// One single-token key eligible for the fuzzy pass.
#[derive(Debug, Clone)]
struct FuzzyEntry {
    /// The key text (a canonical name or synonym, one token).
    key: String,
    /// `key.chars().count()`, cached for the legacy-order tie-break.
    key_len: u32,
    /// Canonical-table index the key resolves to.
    canonical: u32,
}

const DEFAULT_MEMO_CAPACITY: usize = 8192;

/// Reusable per-caller working state for [`AliasResolver::resolve_with`]:
/// cleaning buffers plus the bounded memo cache for repeated lines.
///
/// One scratch per worker thread gives an allocation-free steady state
/// *and* keeps memoization lock-free — the cache is a pure function
/// table, so per-worker caches cannot disturb determinism.
#[derive(Debug, Clone)]
pub struct ResolveScratch {
    /// Normalized-phrase buffer.
    norm: String,
    /// Cleaned tokens, concatenated with single spaces (so a matched
    /// span is one contiguous subslice — no `join` needed).
    tok_buf: String,
    /// Byte range of each cleaned token within `tok_buf`.
    spans: Vec<(u32, u32)>,
    /// Interned id of each cleaned token (`NO_TOKEN` when unknown).
    ids: Vec<u32>,
    /// Deletion-variant buffer for the fuzzy pass.
    variant: String,
    /// Candidate-entry buffer for the fuzzy pass.
    candidates: Vec<u32>,
    /// Bounded phrase → resolution memo (cleared wholesale when full,
    /// so the bound is hard and the policy deterministic).
    memo: HashMap<String, Resolution>,
    memo_capacity: usize,
    /// Lifetime memo-cache hits (monotonic; survives cache clears).
    memo_hits: u64,
    /// Lifetime memo-cache misses, i.e. full trie walks. A scratch with
    /// memoization disabled counts every resolve here.
    memo_misses: u64,
}

impl Default for ResolveScratch {
    fn default() -> Self {
        ResolveScratch::new()
    }
}

impl ResolveScratch {
    /// A scratch with the default memo bound (8192 distinct lines).
    pub fn new() -> Self {
        ResolveScratch::with_memo_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// A scratch bounding the memo cache to `capacity` distinct lines;
    /// `0` disables memoization entirely.
    pub fn with_memo_capacity(capacity: usize) -> Self {
        ResolveScratch {
            norm: String::new(),
            tok_buf: String::new(),
            spans: Vec::new(),
            ids: Vec::new(),
            variant: String::new(),
            candidates: Vec::new(),
            memo: HashMap::new(),
            memo_capacity: capacity,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Number of lines currently memoized.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Lifetime `(hits, misses)` of the memo cache — the cache-efficacy
    /// numbers the observed import pipeline reports (`import.memo.*`).
    /// Monotonic across cache clears; a miss is one full trie walk.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    /// The text of cleaned token `i` (valid after a resolve).
    fn token(&self, i: usize) -> &str {
        let (s, e) = self.spans[i];
        &self.tok_buf[s as usize..e as usize]
    }
}

/// The ingredient lexicon and matching engine.
#[derive(Debug, Clone)]
pub struct AliasResolver {
    /// Token text ↔ dense id for every token in a lexicon entry.
    interner: TokenInterner,
    /// Flat trie arena; index 0 is the root.
    nodes: Vec<TrieNode>,
    /// Canonical-name storage, deduplicated; trie payloads and fuzzy
    /// entries index into this.
    canon_names: Vec<String>,
    canon_ids: HashMap<String, u32>,
    /// Distinct canonical keys / synonym keys registered (set semantics:
    /// re-adding an existing key does not count).
    n_canonical: usize,
    n_synonyms: usize,
    /// Token ids occurring in *multi-word* lexicon entries. These are
    /// exempt from stopword removal so entries like "virgin olive oil"
    /// or "half half" stay matchable even when their words are generic
    /// culinary stopwords.
    multiword_tokens: HashSet<u32>,
    /// Fuzzy keys in insertion order (the legacy tie-break order).
    fuzzy_entries: Vec<FuzzyEntry>,
    /// Deletion-neighborhood index: key text and each of its
    /// one-character deletions → entries bucketed there.
    fuzzy_deletions: HashMap<String, Vec<u32>>,
    /// Maximum n-gram length tried (paper: 6).
    max_ngram: usize,
    /// Maximum edit distance for the fuzzy pass.
    fuzzy_max_distance: usize,
    /// Minimum token length eligible for fuzzy matching (short tokens
    /// produce too many false positives).
    fuzzy_min_len: usize,
}

impl Default for AliasResolver {
    fn default() -> Self {
        AliasResolver::new()
    }
}

impl AliasResolver {
    /// A resolver with the paper's parameters: n-grams up to 6, fuzzy
    /// distance 1 for tokens of at least 5 characters.
    pub fn new() -> Self {
        AliasResolver {
            interner: TokenInterner::default(),
            nodes: vec![TrieNode::default()],
            canon_names: Vec::new(),
            canon_ids: HashMap::new(),
            n_canonical: 0,
            n_synonyms: 0,
            multiword_tokens: HashSet::new(),
            fuzzy_entries: Vec::new(),
            fuzzy_deletions: HashMap::new(),
            max_ngram: 6,
            fuzzy_max_distance: 1,
            fuzzy_min_len: 5,
        }
    }

    /// Normalize a lexicon entry the same way phrases are normalized:
    /// tokenize, singularize (stopwords are *kept* — curated names
    /// should not contain any).
    fn canon_key(name: &str) -> String {
        tokenize(name)
            .iter()
            .map(|t| singularize(t))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Index of `key` in the canonical-name table, interning it.
    fn canon_idx(&mut self, key: &str) -> u32 {
        if let Some(&idx) = self.canon_ids.get(key) {
            return idx;
        }
        let idx = self.canon_names.len() as u32;
        self.canon_ids.insert(key.to_owned(), idx);
        self.canon_names.push(key.to_owned());
        idx
    }

    /// Walk-or-create the trie path spelling `key`; returns the final
    /// node index (the root for an empty key).
    fn insert_path(&mut self, key: &str) -> usize {
        let mut node = 0usize;
        if key.is_empty() {
            return node;
        }
        for tok in key.split(' ') {
            let tid = self.interner.intern(tok);
            node = match self.nodes[node].edges.binary_search_by_key(&tid, |e| e.0) {
                Ok(pos) => self.nodes[node].edges[pos].1 as usize,
                Err(pos) => {
                    let child = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].edges.insert(pos, (tid, child as u32));
                    child
                }
            };
        }
        node
    }

    /// Follow one trie transition, if present.
    #[inline]
    fn child(&self, node: usize, tid: u32) -> Option<usize> {
        let edges = &self.nodes[node].edges;
        edges
            .binary_search_by_key(&tid, |e| e.0)
            .ok()
            .map(|pos| edges[pos].1 as usize)
    }

    /// Register a canonical ingredient name (possibly multi-word).
    /// Returns the normalized key under which it was stored.
    pub fn add_canonical(&mut self, name: &str) -> String {
        let key = Self::canon_key(name);
        let cidx = self.canon_idx(&key);
        let node = self.insert_path(&key);
        if self.nodes[node].exact.is_none() {
            self.n_canonical += 1;
        }
        self.nodes[node].exact = Some(cidx);
        self.index_for_fuzzy(&key, cidx);
        self.remember_tokens(&key);
        key
    }

    /// Register `synonym` as an alias of `canonical` (the canonical need
    /// not be registered yet; matches resolve to its normalized form).
    pub fn add_synonym(&mut self, synonym: &str, canonical: &str) {
        let skey = Self::canon_key(synonym);
        let ckey = Self::canon_key(canonical);
        let cidx = self.canon_idx(&ckey);
        self.index_for_fuzzy(&skey, cidx);
        self.remember_tokens(&skey);
        let node = self.insert_path(&skey);
        if self.nodes[node].synonym.is_none() {
            self.n_synonyms += 1;
        }
        self.nodes[node].synonym = Some(cidx);
    }

    fn remember_tokens(&mut self, key: &str) {
        // Only multi-word entries earn the stopword exemption: a
        // single-word entry that doubles as a culinary stopword
        // ("clove" in "2 cloves garlic") is overwhelmingly the
        // container/measure sense in free text.
        if !key.contains(' ') {
            return;
        }
        for tok in key.split(' ') {
            let tid = self.interner.intern(tok);
            self.multiword_tokens.insert(tid);
        }
    }

    /// Index a single-token key for the fuzzy pass: the entry is
    /// bucketed under itself and each of its one-character deletions,
    /// so a distance-≤1 query shares at least one bucket with it
    /// (deletion / insertion / substitution / adjacent transposition
    /// all collide in the combined neighborhoods).
    fn index_for_fuzzy(&mut self, key: &str, canonical: u32) {
        if key.contains(' ') {
            return;
        }
        let key_len = key.chars().count();
        if key_len < self.fuzzy_min_len {
            return;
        }
        let idx = self.fuzzy_entries.len() as u32;
        self.fuzzy_entries.push(FuzzyEntry {
            key: key.to_owned(),
            key_len: key_len as u32,
            canonical,
        });
        self.fuzzy_deletions
            .entry(key.to_owned())
            .or_default()
            .push(idx);
        if self.fuzzy_max_distance >= 1 {
            let mut seen: HashSet<String> = HashSet::new();
            for skip in 0..key_len {
                let mut variant = String::with_capacity(key.len());
                for (i, ch) in key.chars().enumerate() {
                    if i != skip {
                        variant.push(ch);
                    }
                }
                if seen.insert(variant.clone()) {
                    self.fuzzy_deletions.entry(variant).or_default().push(idx);
                }
            }
        }
    }

    /// Number of canonical entries.
    pub fn n_canonical(&self) -> usize {
        self.n_canonical
    }

    /// Number of synonyms.
    pub fn n_synonyms(&self) -> usize {
        self.n_synonyms
    }

    /// Number of distinct interned lexicon tokens.
    pub fn n_tokens(&self) -> usize {
        self.interner.len()
    }

    /// True if the normalized form of `name` is a canonical entry.
    pub fn is_canonical(&self, name: &str) -> bool {
        let key = Self::canon_key(name);
        let mut node = 0usize;
        if !key.is_empty() {
            for tok in key.split(' ') {
                let Some(tid) = self.interner.get(tok) else {
                    return false;
                };
                let Some(next) = self.child(node, tid) else {
                    return false;
                };
                node = next;
            }
        }
        self.nodes[node].exact.is_some()
    }

    /// Fuzzy lookup via the deletion index: gather candidate entries
    /// from the query's bucket and its one-deletion buckets, then verify
    /// only those collisions with Damerau–Levenshtein. Ties break
    /// exactly like the legacy length-bucket scan: shortest key first,
    /// then insertion order.
    fn lookup_fuzzy(
        &self,
        token: &str,
        candidates: &mut Vec<u32>,
        variant: &mut String,
    ) -> Option<u32> {
        let len = token.chars().count();
        if len < self.fuzzy_min_len {
            return None;
        }
        if self.fuzzy_max_distance != 1 {
            return self.lookup_fuzzy_scan(token, len);
        }
        candidates.clear();
        if let Some(bucket) = self.fuzzy_deletions.get(token) {
            candidates.extend_from_slice(bucket);
        }
        for skip in 0..len {
            variant.clear();
            for (i, ch) in token.chars().enumerate() {
                if i != skip {
                    variant.push(ch);
                }
            }
            if let Some(bucket) = self.fuzzy_deletions.get(variant.as_str()) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<(u32, u32)> = None;
        for &idx in candidates.iter() {
            let entry = &self.fuzzy_entries[idx as usize];
            if best.is_some_and(|b| (entry.key_len, idx) >= b) {
                continue;
            }
            if within_distance(token, &entry.key, self.fuzzy_max_distance) {
                best = Some((entry.key_len, idx));
            }
        }
        best.map(|(_, idx)| self.fuzzy_entries[idx as usize].canonical)
    }

    /// Fallback for non-default `fuzzy_max_distance` configurations: a
    /// plain scan in the legacy bucket order (the deletion index is
    /// built for distance 1 only).
    fn lookup_fuzzy_scan(&self, token: &str, len: usize) -> Option<u32> {
        let lo = len.saturating_sub(self.fuzzy_max_distance) as u32;
        let hi = (len + self.fuzzy_max_distance) as u32;
        let mut best: Option<(u32, u32)> = None;
        for (idx, entry) in self.fuzzy_entries.iter().enumerate() {
            if entry.key_len < lo || entry.key_len > hi {
                continue;
            }
            if best.is_some_and(|b| (entry.key_len, idx as u32) >= b) {
                continue;
            }
            if within_distance(token, &entry.key, self.fuzzy_max_distance) {
                best = Some((entry.key_len, idx as u32));
            }
        }
        best.map(|(_, idx)| self.fuzzy_entries[idx as usize].canonical)
    }

    /// Clean `phrase` into `scratch`: normalize, split, singularize,
    /// drop stopwords (with the multi-word-entry exemption), and intern
    /// each surviving token against the lexicon. Allocation-free once
    /// the scratch buffers have grown to the phrase size.
    fn clean_into(&self, phrase: &str, scratch: &mut ResolveScratch) {
        normalize_phrase_into(phrase, &mut scratch.norm);
        scratch.tok_buf.clear();
        scratch.spans.clear();
        scratch.ids.clear();
        let ResolveScratch {
            norm,
            tok_buf,
            spans,
            ids,
            ..
        } = scratch;
        for raw in norm.split_whitespace() {
            // Pure numbers are quantities ("2", the "1" and "2" of
            // "1/2"), never ingredients.
            if raw.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            let tok: Cow<'_, str> = singularized(raw);
            let id = self.interner.get(&tok);
            let keep =
                !is_stopword(&tok) || id.is_some_and(|id| self.multiword_tokens.contains(&id));
            if !keep {
                continue;
            }
            if !tok_buf.is_empty() {
                tok_buf.push(' ');
            }
            let start = tok_buf.len() as u32;
            tok_buf.push_str(&tok);
            spans.push((start, tok_buf.len() as u32));
            ids.push(id.unwrap_or(NO_TOKEN));
        }
    }

    /// Clean a phrase into match-ready tokens: tokenize, singularize,
    /// then drop stopwords — except tokens that occur in a multi-word
    /// lexicon entry ("virgin olive oil", "half half"), which must
    /// survive cleaning to stay matchable.
    pub fn clean_tokens(&self, phrase: &str) -> Vec<String> {
        let mut scratch = ResolveScratch::with_memo_capacity(0);
        self.clean_into(phrase, &mut scratch);
        (0..scratch.spans.len())
            .map(|i| scratch.token(i).to_owned())
            .collect()
    }

    /// Resolve a phrase: greedy longest-n-gram matching, left to right.
    ///
    /// Convenience wrapper over [`AliasResolver::resolve_with`] with a
    /// throwaway scratch; batch callers should hold a [`ResolveScratch`]
    /// per worker instead.
    pub fn resolve(&self, phrase: &str) -> Resolution {
        let mut scratch = ResolveScratch::with_memo_capacity(0);
        self.resolve_with(phrase, &mut scratch)
    }

    /// Resolve a phrase using caller-owned working state — the hot-path
    /// entry point. Checks the scratch's memo cache first, then walks
    /// token-id windows down the phrase trie, longest match first, with
    /// the deletion-indexed fuzzy fallback for lone tokens.
    ///
    /// ```
    /// use culinaria_text::alias::{AliasResolver, ResolveScratch};
    ///
    /// let mut resolver = AliasResolver::new();
    /// resolver.add_canonical("olive oil");
    /// let mut scratch = ResolveScratch::new();
    ///
    /// let first = resolver.resolve_with("2 tbsp Olive Oil", &mut scratch);
    /// assert_eq!(first.matches[0].canonical, "olive oil");
    ///
    /// // A repeated line comes from the scratch's memo cache — same
    /// // result, no trie walk.
    /// let again = resolver.resolve_with("2 tbsp Olive Oil", &mut scratch);
    /// assert_eq!(again, first);
    /// assert_eq!(scratch.memo_stats(), (1, 1)); // (hits, misses)
    /// ```
    pub fn resolve_with(&self, phrase: &str, scratch: &mut ResolveScratch) -> Resolution {
        if let Some(hit) = scratch.memo.get(phrase) {
            scratch.memo_hits += 1;
            return hit.clone();
        }
        scratch.memo_misses += 1;
        self.clean_into(phrase, scratch);
        let n_tokens = scratch.ids.len();
        let mut matches = Vec::new();
        let mut unresolved = Vec::new();
        let mut pos = 0;
        while pos < n_tokens {
            let top = self.max_ngram.min(n_tokens - pos);
            // Walk the trie as deep as the ids allow, remembering the
            // deepest terminal: that is exactly the longest n-gram the
            // legacy matcher would have found, with Exact preferred
            // over Synonym at equal depth.
            let mut node = 0usize;
            let mut best: Option<(usize, u32, MatchKind)> = None;
            for k in 0..top {
                let tid = scratch.ids[pos + k];
                if tid == NO_TOKEN {
                    break;
                }
                let Some(next) = self.child(node, tid) else {
                    break;
                };
                node = next;
                let n = &self.nodes[node];
                if let Some(cidx) = n.exact {
                    best = Some((k + 1, cidx, MatchKind::Exact));
                } else if let Some(cidx) = n.synonym {
                    best = Some((k + 1, cidx, MatchKind::Synonym));
                }
            }
            if let Some((n, cidx, kind)) = best {
                let (start, _) = scratch.spans[pos];
                let (_, end) = scratch.spans[pos + n - 1];
                matches.push(ResolvedMatch {
                    canonical: self.canon_names[cidx as usize].clone(),
                    matched_text: scratch.tok_buf[start as usize..end as usize].to_owned(),
                    kind,
                });
                pos += n;
                continue;
            }
            // Single-token fuzzy fallback.
            let (tok_start, tok_end) = scratch.spans[pos];
            let token = &scratch.tok_buf[tok_start as usize..tok_end as usize];
            if let Some(cidx) =
                self.lookup_fuzzy(token, &mut scratch.candidates, &mut scratch.variant)
            {
                matches.push(ResolvedMatch {
                    canonical: self.canon_names[cidx as usize].clone(),
                    matched_text: token.to_owned(),
                    kind: MatchKind::Fuzzy,
                });
            } else {
                unresolved.push(token.to_owned());
            }
            pos += 1;
        }
        let resolution = Resolution {
            matches,
            unresolved,
        };
        if scratch.memo_capacity > 0 {
            if scratch.memo.len() >= scratch.memo_capacity {
                // Hard bound: restart the cache wholesale. Deterministic
                // and O(1) amortized, which beats tracking recency.
                scratch.memo.clear();
            }
            scratch.memo.insert(phrase.to_owned(), resolution.clone());
        }
        resolution
    }

    /// Convenience: just the matches of [`AliasResolver::resolve`].
    pub fn resolve_phrase(&self, phrase: &str) -> Vec<ResolvedMatch> {
        self.resolve(phrase).matches
    }
}

/// Mine candidate new-lexicon entries from a corpus of unresolved
/// phrases: counts every n-gram (n ≤ `max_n`) across the phrases and
/// returns those occurring at least `min_count` times, most frequent
/// first. This is the paper's curation aid for "commonly occurring
/// ingredients which were either not present in the database or were
/// variations of existing entities".
pub fn mine_frequent_ngrams(
    phrases: &[String],
    max_n: usize,
    min_count: usize,
) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for phrase in phrases {
        let tokens: Vec<String> = tokenize(phrase)
            .into_iter()
            .filter(|t| !is_stopword(t))
            .map(|t| singularize(&t))
            .collect();
        for gram in crate::ngram::ngram_strings(&tokens, max_n) {
            *counts.entry(gram).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(String, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver() -> AliasResolver {
        let mut r = AliasResolver::new();
        r.add_canonical("tomato");
        r.add_canonical("olive oil");
        r.add_canonical("extra virgin olive oil");
        r.add_canonical("jalapeno pepper");
        r.add_canonical("bread");
        r.add_canonical("yogurt");
        r.add_canonical("whiskey");
        r.add_canonical("chili");
        r.add_canonical("garlic");
        r.add_synonym("bun", "bread");
        r.add_synonym("curd", "yogurt");
        r.add_synonym("chile", "chili");
        r
    }

    #[test]
    fn exact_single_token() {
        let m = resolver().resolve_phrase("3 ripe tomatoes, diced");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "tomato");
        assert_eq!(m[0].kind, MatchKind::Exact);
    }

    #[test]
    fn longest_match_wins() {
        // "extra" and "virgin" are culinary stopwords, but both occur
        // in the multi-word lexicon entry "extra virgin olive oil", so
        // they survive cleaning and the longest (4-gram) entry matches
        // — not the embedded "olive oil".
        let mut r = resolver();
        r.add_canonical("virgin olive oil");
        let m = r.resolve_phrase("2 tbsp extra-virgin olive oil");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "extra virgin olive oil");

        // Without the longer entries, the stopwords fall away and the
        // bare "olive oil" still matches.
        let mut r2 = AliasResolver::new();
        r2.add_canonical("olive oil");
        let m = r2.resolve_phrase("2 tbsp extra-virgin olive oil");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "olive oil");
    }

    #[test]
    fn multiword_before_parts() {
        let m = resolver().resolve_phrase("olive oil for frying");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "olive oil");
        assert_eq!(m[0].matched_text, "olive oil");
    }

    #[test]
    fn synonyms_map_to_canonical() {
        let m = resolver().resolve_phrase("1 bun");
        assert_eq!(m[0].canonical, "bread");
        assert_eq!(m[0].kind, MatchKind::Synonym);
        let m = resolver().resolve_phrase("250g curd");
        assert_eq!(m[0].canonical, "yogurt");
    }

    #[test]
    fn plural_and_case_insensitive() {
        let m = resolver().resolve_phrase("Jalapeno Peppers");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "jalapeno pepper");
    }

    #[test]
    fn fuzzy_spelling_variants() {
        let m = resolver().resolve_phrase("a dram of whisky");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "whiskey");
        assert_eq!(m[0].kind, MatchKind::Fuzzy);
    }

    #[test]
    fn fuzzy_requires_min_length() {
        let mut r = AliasResolver::new();
        r.add_canonical("rice");
        // "rise" is within distance 1 of "rice" but too short for fuzzy.
        let res = r.resolve("rise");
        assert!(res.matches.is_empty());
        assert_eq!(res.unresolved, vec!["rise"]);
    }

    #[test]
    fn fuzzy_transposition_at_min_len_boundary() {
        let mut r = AliasResolver::new();
        r.add_canonical("onion"); // exactly fuzzy_min_len = 5 chars
        r.add_canonical("rice"); // one char below the boundary
                                 // Transposed 5-char token: eligible, matches at distance 1.
        let res = r.resolve("oinon");
        assert_eq!(res.matches.len(), 1);
        assert_eq!(res.matches[0].canonical, "onion");
        assert_eq!(res.matches[0].kind, MatchKind::Fuzzy);
        // Transposed 4-char token: below the boundary, never fuzzy.
        let res = r.resolve("rcie");
        assert!(res.matches.is_empty());
        assert_eq!(res.unresolved, vec!["rcie"]);
    }

    #[test]
    fn fuzzy_prefers_shorter_key_then_insertion_order() {
        // Query "gratin" (6 chars) is within distance 1 of both
        // "grain" (5) and "grating" (7): the shorter key wins, exactly
        // like the legacy ascending length-bucket scan.
        let mut r = AliasResolver::new();
        r.add_canonical("grating");
        r.add_canonical("grain");
        let res = r.resolve("gratin");
        assert_eq!(res.matches.len(), 1);
        assert_eq!(res.matches[0].canonical, "grain");
    }

    #[test]
    fn multiword_entry_of_pure_stopwords_matches() {
        // Both tokens of "half half" are culinary stopwords; the
        // multi-word exemption must keep them alive through cleaning.
        let mut r = AliasResolver::new();
        r.add_canonical("half half");
        let m = r.resolve_phrase("1 cup half-and-half, warmed");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "half half");
        // "virgin olive oil" likewise: "virgin" alone is a stopword.
        let mut r = AliasResolver::new();
        r.add_canonical("virgin olive oil");
        let m = r.resolve_phrase("virgin olive oil");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "virgin olive oil");
    }

    #[test]
    fn unresolved_flagged() {
        let res = resolver().resolve("2 cups unobtainium flakes");
        assert!(res.matches.is_empty());
        assert_eq!(res.unresolved, vec!["unobtainium", "flake"]);
    }

    #[test]
    fn mixed_resolution() {
        let res = resolver().resolve("garlic and xyzzy with chile");
        let canon: Vec<&str> = res.matches.iter().map(|m| m.canonical.as_str()).collect();
        assert_eq!(canon, vec!["garlic", "chili"]);
        assert_eq!(res.unresolved, vec!["xyzzy"]);
    }

    #[test]
    fn paper_example_phrase() {
        let m = resolver().resolve_phrase("2 jalapeno peppers, roasted and slit");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "jalapeno pepper");
    }

    #[test]
    fn counts_reported() {
        let r = resolver();
        assert_eq!(r.n_canonical(), 9);
        assert_eq!(r.n_synonyms(), 3);
        assert!(r.is_canonical("Tomatoes"));
        assert!(!r.is_canonical("pineapple"));
        assert!(r.n_tokens() >= 9);
    }

    #[test]
    fn re_registration_is_set_semantics() {
        let mut r = resolver();
        r.add_canonical("tomato");
        r.add_canonical("Tomatoes"); // same normalized key
        r.add_synonym("bun", "bread");
        assert_eq!(r.n_canonical(), 9);
        assert_eq!(r.n_synonyms(), 3);
    }

    #[test]
    fn memo_cache_hits_and_stays_bounded() {
        let r = resolver();
        let mut scratch = ResolveScratch::with_memo_capacity(2);
        let first = r.resolve_with("3 ripe tomatoes", &mut scratch);
        assert_eq!(scratch.memo_len(), 1);
        let again = r.resolve_with("3 ripe tomatoes", &mut scratch);
        assert_eq!(first, again);
        r.resolve_with("1 bun", &mut scratch);
        assert_eq!(scratch.memo_len(), 2);
        // Third distinct line trips the bound: cache restarts.
        r.resolve_with("250g curd", &mut scratch);
        assert_eq!(scratch.memo_len(), 1);
        // And memoized results equal fresh ones.
        assert_eq!(
            r.resolve_with("250g curd", &mut scratch),
            r.resolve("250g curd")
        );
        // Hit/miss accounting is monotonic across the wholesale clear:
        // hits for "3 ripe tomatoes" and the "250g curd" re-resolve
        // (inserted right after the clear), misses for the three
        // distinct first-time lines.
        assert_eq!(scratch.memo_stats(), (2, 3));
    }

    #[test]
    fn memo_disabled_counts_every_resolve_as_miss() {
        let r = resolver();
        let mut scratch = ResolveScratch::with_memo_capacity(0);
        r.resolve_with("3 ripe tomatoes", &mut scratch);
        r.resolve_with("3 ripe tomatoes", &mut scratch);
        assert_eq!(scratch.memo_stats(), (0, 2));
    }

    #[test]
    fn scratch_reuse_is_clean_across_phrases() {
        let r = resolver();
        let mut scratch = ResolveScratch::new();
        let long = r.resolve_with("2 jalapeno peppers, roasted and slit", &mut scratch);
        assert_eq!(long.matches[0].canonical, "jalapeno pepper");
        // A shorter follow-up must not see stale buffer contents.
        let short = r.resolve_with("1 bun", &mut scratch);
        assert_eq!(short.matches.len(), 1);
        assert_eq!(short.matches[0].canonical, "bread");
        assert!(short.unresolved.is_empty());
    }

    #[test]
    fn mining_finds_common_unknowns() {
        let phrases: Vec<String> = vec![
            "2 cups panko crumbs".into(),
            "panko crumbs for coating".into(),
            "1 cup panko crumbs, divided".into(),
            "something else".into(),
        ];
        let mined = mine_frequent_ngrams(&phrases, 6, 3);
        assert!(mined.iter().any(|(g, c)| g == "panko crumb" && *c == 3));
        // Rare grams excluded.
        assert!(!mined.iter().any(|(g, _)| g == "something else"));
    }

    #[test]
    fn empty_phrase() {
        let res = resolver().resolve("");
        assert!(res.matches.is_empty());
        assert!(res.unresolved.is_empty());
    }

    #[test]
    fn interner_round_trips() {
        let mut interner = TokenInterner::default();
        assert!(interner.is_empty());
        let a = interner.intern("olive");
        let b = interner.intern("oil");
        assert_eq!(interner.intern("olive"), a);
        assert_eq!(interner.get("oil"), Some(b));
        assert_eq!(interner.get("truffle"), None);
        assert_eq!(interner.text(a), "olive");
        assert_eq!(interner.len(), 2);
    }
}
