//! English and culinary stopword lists.
//!
//! The paper removes "stopwords, including some culinary stopwords"
//! before matching. The culinary list covers measurement units,
//! preparation verbs/participles, container words, and qualifier
//! adjectives that appear in ingredient lines but never name an
//! ingredient.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Core English stopwords (function words) — a compact list sufficient
/// for ingredient phrases, which are short noun phrases.
const ENGLISH: &[&str] = &[
    "a",
    "an",
    "the",
    "and",
    "or",
    "of",
    "in",
    "on",
    "for",
    "to",
    "with",
    "without",
    "into",
    "at",
    "by",
    "from",
    "as",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "it",
    "its",
    "if",
    "then",
    "than",
    "that",
    "this",
    "these",
    "those",
    "each",
    "per",
    "plus",
    "more",
    "most",
    "very",
    "such",
    "so",
    "but",
    "not",
    "no",
    "only",
    "own",
    "same",
    "other",
    "any",
    "all",
    "both",
    "few",
    "some",
    "about",
    "again",
    "too",
    "up",
    "down",
    "out",
    "off",
    "over",
    "under",
    "until",
    "your",
    "you",
    "needed",
    "desired",
    "optional",
    "taste",
    "divided",
    "preferably",
    "well",
    "like",
    "i",
    "we",
    "use",
    "used",
    "using",
];

/// Culinary stopwords: units, preparation words, container words, and
/// qualifiers that never name an ingredient.
const CULINARY: &[&str] = &[
    // Units and measures.
    "cup",
    "cups",
    "teaspoon",
    "teaspoons",
    "tsp",
    "tablespoon",
    "tablespoons",
    "tbsp",
    "ounce",
    "ounces",
    "oz",
    "pound",
    "pounds",
    "lb",
    "lbs",
    "gram",
    "grams",
    "g",
    "kg",
    "kilogram",
    "kilograms",
    "ml",
    "milliliter",
    "milliliters",
    "liter",
    "liters",
    "l",
    "quart",
    "quarts",
    "pint",
    "pints",
    "gallon",
    "gallons",
    "dash",
    "dashes",
    "pinch",
    "pinches",
    "handful",
    "stick",
    "sticks",
    "inch",
    "inches",
    "cm",
    "fluid",
    "fl",
    // Containers and forms.
    "can",
    "cans",
    "canned",
    "jar",
    "jars",
    "package",
    "packages",
    "pkg",
    "bag",
    "bags",
    "box",
    "boxes",
    "bottle",
    "bottles",
    "carton",
    "cartons",
    "container",
    "containers",
    "bunch",
    "bunches",
    "head",
    "heads",
    "clove",
    "cloves",
    "sprig",
    "sprigs",
    "stalk",
    "stalks",
    "slice",
    "slices",
    "piece",
    "pieces",
    "strip",
    "strips",
    "cube",
    "cubes",
    "wedge",
    "wedges",
    "envelope",
    "envelopes",
    "sheet",
    "sheets",
    "loaf",
    "leaf",
    "leaves",
    "pod",
    "pods",
    "thread",
    "threads",
    "knob",
    "knobs",
    "dram",
    "shot",
    "shots",
    "floret",
    "florets",
    "rib",
    "ribs",
    // Preparation verbs and participles.
    "chopped",
    "minced",
    "diced",
    "sliced",
    "grated",
    "shredded",
    "crushed",
    "ground",
    "peeled",
    "seeded",
    "cored",
    "pitted",
    "trimmed",
    "halved",
    "quartered",
    "cubed",
    "julienned",
    "mashed",
    "beaten",
    "whisked",
    "melted",
    "softened",
    "chilled",
    "cooled",
    "warmed",
    "heated",
    "cooked",
    "uncooked",
    "boiled",
    "steamed",
    "roasted",
    "toasted",
    "grilled",
    "fried",
    "baked",
    "broiled",
    "blanched",
    "drained",
    "rinsed",
    "washed",
    "dried",
    "thawed",
    "frozen",
    "defrosted",
    "crumbled",
    "flaked",
    "torn",
    "cut",
    "split",
    "slit",
    "scored",
    "separated",
    "removed",
    "discarded",
    "reserved",
    "packed",
    "sifted",
    "strained",
    "squeezed",
    "zested",
    "juiced",
    "stemmed",
    "shelled",
    "deveined",
    "boned",
    "skinned",
    "scrubbed",
    "prepared",
    "refrigerated",
    "room",
    "temperature",
    "finely",
    "coarsely",
    "thinly",
    "thickly",
    "roughly",
    "lightly",
    "freshly",
    "firmly",
    "loosely",
    "approximately",
    "garnish",
    "serving",
    "servings",
    // Qualifiers that never name an ingredient. NOTE: "fresh"/"dried"
    // stay out of ingredient names by convention in our lexicon.
    "fresh",
    "large",
    "medium",
    "small",
    "extra",
    "jumbo",
    "mini",
    "ripe",
    "overripe",
    "raw",
    "whole",
    "half",
    "halves",
    "fine",
    "coarse",
    "thick",
    "thin",
    "heaping",
    "virgin",
    "level",
    "rounded",
    "scant",
    "generous",
    "good",
    "quality",
    "best",
    "favorite",
    "store",
    "bought",
    "homemade",
    "leftover",
    "instant",
    "quick",
    "cooking",
    "style",
    "type",
    "variety",
    "assorted",
    "mixed",
    "additional",
    "substitute",
    "equivalent",
    "ml-sized",
    "size",
    "sized",
    "amount",
    "amounts",
];

fn english_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| ENGLISH.iter().copied().collect())
}

fn culinary_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| CULINARY.iter().copied().collect())
}

/// True if `token` (already lowercased) is an English function word.
pub fn is_english_stopword(token: &str) -> bool {
    english_set().contains(token)
}

/// True if `token` (already lowercased) is a culinary stopword.
pub fn is_culinary_stopword(token: &str) -> bool {
    culinary_set().contains(token)
}

/// True if `token` is either kind of stopword.
pub fn is_stopword(token: &str) -> bool {
    is_english_stopword(token) || is_culinary_stopword(token)
}

/// Drop stopword tokens, preserving order.
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    tokens.iter().filter(|t| !is_stopword(t)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_words_detected() {
        for w in ["the", "and", "of", "with"] {
            assert!(is_english_stopword(w), "{w}");
            assert!(is_stopword(w));
        }
        assert!(!is_english_stopword("garlic"));
    }

    #[test]
    fn culinary_words_detected() {
        for w in ["chopped", "cups", "tablespoon", "minced", "canned", "fresh"] {
            assert!(is_culinary_stopword(w), "{w}");
        }
        assert!(!is_culinary_stopword("tomato"));
        assert!(!is_culinary_stopword("pepper"));
    }

    #[test]
    fn ingredient_names_survive() {
        // Words that must never be swallowed by the stopword lists.
        for w in [
            "tomato", "garlic", "pepper", "onion", "chicken", "basil", "cream", "butter", "milk",
            "rice", "olive", "oil", "bean", "ginger",
        ] {
            assert!(!is_stopword(w), "{w} wrongly classified as stopword");
        }
    }

    #[test]
    fn remove_stopwords_preserves_order() {
        let tokens: Vec<String> = ["2", "cups", "chopped", "roma", "tomatoes"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(remove_stopwords(&tokens), vec!["2", "roma", "tomatoes"]);
    }

    #[test]
    fn no_overlap_surprises() {
        // Sanity: the two lists don't disagree about capitalization —
        // everything is stored lowercase.
        for w in ENGLISH.iter().chain(CULINARY) {
            assert_eq!(*w, w.to_lowercase(), "stopword {w} not lowercase");
        }
    }
}
