#![warn(missing_docs)]

//! # culinaria-text
//!
//! The ingredient-aliasing NLP pipeline, reproducing the paper's protocol
//! for mapping free-text ingredient phrases ("2 jalapeno peppers, roasted
//! and slit") onto canonical ingredient entities with flavor profiles.
//!
//! The paper's multi-step protocol (§IV.A) is implemented end to end:
//!
//! 1. lowercase; strip punctuation and special characters
//!    ([`normalize`]);
//! 2. remove English stopwords *and* culinary stopwords — units,
//!    preparation verbs, quantity words ([`stopwords`]);
//! 3. singularize every token with a rule-plus-irregulars engine
//!    standing in for Python's `inflect` ([`singularize()`](singularize::singularize));
//! 4. generate n-grams up to 6 tokens over the cleaned phrase
//!    ([`ngram`]);
//! 5. resolve n-grams against the ingredient lexicon and synonym table,
//!    longest match first, with a Damerau–Levenshtein fallback for
//!    spelling variants (whiskey/whisky, chili/chile) and explicit
//!    flagging of partial/unrecognized matches for curation
//!    ([`alias`], [`edit_distance`]).
//!
//! The production matcher in [`alias`] is an interned-token phrase trie
//! with a deletion-neighborhood fuzzy index; the original string-join
//! matcher survives in [`legacy`] as a frozen parity reference for
//! benchmarks and property tests.
//!
//! ```
//! use culinaria_text::alias::{AliasResolver, MatchKind};
//!
//! let mut resolver = AliasResolver::new();
//! resolver.add_canonical("jalapeno pepper");
//! resolver.add_canonical("olive oil");
//! resolver.add_canonical("chili");
//! resolver.add_synonym("chile", "chili");
//!
//! let matches = resolver.resolve_phrase("2 Jalapeno Peppers, roasted and slit");
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].canonical, "jalapeno pepper");
//! assert_eq!(matches[0].kind, MatchKind::Exact);
//! ```

pub mod alias;
pub mod edit_distance;
pub mod legacy;
pub mod ngram;
pub mod normalize;
pub mod quantity;
pub mod singularize;
pub mod stopwords;

pub use alias::{AliasResolver, MatchKind, ResolveScratch, ResolvedMatch};
pub use edit_distance::{damerau_levenshtein, within_distance};
pub use ngram::ngrams_up_to;
pub use normalize::{normalize_phrase, normalize_phrase_into, tokenize};
pub use singularize::{singularize, singularized};
pub use stopwords::{is_culinary_stopword, is_english_stopword, is_stopword};
