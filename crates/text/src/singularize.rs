//! Rule-based English singularization (an `inflect` stand-in).
//!
//! The paper converts every token to its singular form before matching.
//! The engine below applies, in order: an invariant list (words that are
//! their own plural or look plural but aren't), an irregular table, then
//! suffix rules from most to least specific. It is tuned for the food
//! domain — the test suite doubles as the specification.

/// Words that must never be transformed: uncountables, false plurals,
/// and singular words ending in `s`.
const INVARIANT: &[&str] = &[
    "molasses",
    "couscous",
    "hummus",
    "asparagus",
    "citrus",
    "swiss",
    "brussels",
    "watercress",
    "cress",
    "bass",
    "grass",
    "lemongrass",
    "chassis",
    "schnapps",
    "octopus",
    "haggis",
    "species",
    "series",
    "sugar",
    "rice",
    "bread",
    "butter",
    "water",
    "flour",
    "salt",
    "milk",
    "honey",
    "tahini",
    "wasabi",
    "pasta",
    "paprika",
    "masala",
    "quinoa",
    "tofu",
    "miso",
    "sake",
    "shortening",
];

/// Irregular plural → singular pairs (domain-relevant).
const IRREGULAR: &[(&str, &str)] = &[
    ("leaves", "leaf"),
    ("loaves", "loaf"),
    ("halves", "half"),
    ("calves", "calf"),
    ("knives", "knife"),
    ("wives", "wife"),
    ("lives", "life"),
    ("children", "child"),
    ("men", "man"),
    ("women", "woman"),
    ("teeth", "tooth"),
    ("feet", "foot"),
    ("geese", "goose"),
    ("mice", "mouse"),
    ("people", "person"),
    ("anchovies", "anchovy"),
];

/// Singularize one lowercase token.
///
/// Words of three characters or fewer are returned unchanged (avoids
/// "gas" → "ga" style damage on short tokens).
pub fn singularize(word: &str) -> String {
    if word.len() <= 3 {
        return word.to_owned();
    }
    if INVARIANT.contains(&word) {
        return word.to_owned();
    }
    for &(plural, singular) in IRREGULAR {
        if word == plural {
            return singular.to_owned();
        }
    }

    // Suffix rules, most specific first.
    if let Some(stem) = word.strip_suffix("ies") {
        // berries → berry; but "ies" after a vowel keeps the e: "movies"
        // → "movie" (rare in food text; pies → pie handled below since
        // "pies" has stem "p" — guard on stem length).
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
        return format!("{stem}ie");
    }
    if let Some(stem) = word.strip_suffix("oes") {
        // tomatoes → tomato, potatoes → potato.
        return format!("{stem}o");
    }
    if let Some(stem) = word.strip_suffix("sses") {
        // glasses → glass.
        return format!("{stem}ss");
    }
    if let Some(stem) = word.strip_suffix("ses") {
        // molasses excluded above; "cheeses" → "cheese".
        return format!("{stem}se");
    }
    if let Some(stem) = word.strip_suffix("xes") {
        return format!("{stem}x");
    }
    if let Some(stem) = word.strip_suffix("zes") {
        return format!("{stem}ze");
    }
    if let Some(stem) = word.strip_suffix("ches") {
        return format!("{stem}ch");
    }
    if let Some(stem) = word.strip_suffix("shes") {
        return format!("{stem}sh");
    }
    if word.ends_with("ss") || word.ends_with("us") || word.ends_with("is") {
        // glass, octopus, couscous-like; also "is" endings (basis).
        return word.to_owned();
    }
    if let Some(stem) = word.strip_suffix('s') {
        // peppers → pepper, eggs → egg. Avoid stripping "ous"/"as".
        if stem.ends_with('a') || stem.ends_with('i') || stem.ends_with('u') {
            // "peas" → "pea" is correct, but "bias"-like words were
            // handled by the "is/us/ss" guard; allow vowel stems.
            return stem.to_owned();
        }
        return stem.to_owned();
    }
    word.to_owned()
}

/// Singularize every token in a slice.
pub fn singularize_all(tokens: &[String]) -> Vec<String> {
    tokens.iter().map(|t| singularize(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(w: &str) -> String {
        singularize(w)
    }

    #[test]
    fn common_food_plurals() {
        assert_eq!(s("tomatoes"), "tomato");
        assert_eq!(s("potatoes"), "potato");
        assert_eq!(s("peppers"), "pepper");
        assert_eq!(s("onions"), "onion");
        assert_eq!(s("eggs"), "egg");
        assert_eq!(s("carrots"), "carrot");
        assert_eq!(s("mushrooms"), "mushroom");
        assert_eq!(s("almonds"), "almond");
        assert_eq!(s("peas"), "pea");
        assert_eq!(s("olives"), "olive");
    }

    #[test]
    fn ies_rule() {
        assert_eq!(s("berries"), "berry");
        assert_eq!(s("cherries"), "cherry");
        assert_eq!(s("anchovies"), "anchovy");
        assert_eq!(s("pies"), "pie");
    }

    #[test]
    fn es_rules() {
        assert_eq!(s("peaches"), "peach");
        assert_eq!(s("radishes"), "radish");
        assert_eq!(s("boxes"), "box");
        assert_eq!(s("cheeses"), "cheese");
    }

    #[test]
    fn irregulars() {
        assert_eq!(s("leaves"), "leaf");
        assert_eq!(s("loaves"), "loaf");
        assert_eq!(s("halves"), "half");
        assert_eq!(s("knives"), "knife");
    }

    #[test]
    fn invariants_untouched() {
        for w in [
            "molasses",
            "couscous",
            "hummus",
            "asparagus",
            "rice",
            "bread",
            "milk",
            "watercress",
            "swiss",
        ] {
            assert_eq!(s(w), w, "{w} should be invariant");
        }
    }

    #[test]
    fn singular_words_untouched() {
        for w in ["tomato", "pepper", "cheese", "garlic", "basil", "cream"] {
            assert_eq!(s(w), w, "{w} already singular");
        }
    }

    #[test]
    fn sses_rule() {
        assert_eq!(s("glasses"), "glass");
        assert_eq!(s("molasses"), "molasses"); // invariant wins
    }

    #[test]
    fn us_is_ss_endings_untouched() {
        assert_eq!(s("glass"), "glass");
        assert_eq!(s("octopus"), "octopus");
        assert_eq!(s("citrus"), "citrus");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(s("gas"), "gas");
        assert_eq!(s("as"), "as");
        assert_eq!(s("is"), "is");
    }

    #[test]
    fn idempotent_on_outputs() {
        // Applying twice never changes the result further.
        for w in [
            "tomatoes",
            "berries",
            "leaves",
            "peaches",
            "eggs",
            "onions",
            "cheeses",
            "anchovies",
            "potatoes",
        ] {
            let once = s(w);
            assert_eq!(s(&once), once, "not idempotent for {w}");
        }
    }

    #[test]
    fn singularize_all_maps() {
        let toks: Vec<String> = ["roma", "tomatoes"].iter().map(|s| s.to_string()).collect();
        assert_eq!(singularize_all(&toks), vec!["roma", "tomato"]);
    }
}
