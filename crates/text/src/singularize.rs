//! Rule-based English singularization (an `inflect` stand-in).
//!
//! The paper converts every token to its singular form before matching.
//! The engine below applies, in order: an invariant list (words that are
//! their own plural or look plural but aren't), an irregular table, then
//! suffix rules from most to least specific. It is tuned for the food
//! domain — the test suite doubles as the specification.

use std::borrow::Cow;

/// Words that must never be transformed: uncountables, false plurals,
/// and singular words ending in `s`.
const INVARIANT: &[&str] = &[
    "molasses",
    "couscous",
    "hummus",
    "asparagus",
    "citrus",
    "swiss",
    "brussels",
    "watercress",
    "cress",
    "bass",
    "grass",
    "lemongrass",
    "chassis",
    "schnapps",
    "octopus",
    "haggis",
    "species",
    "series",
    "sugar",
    "rice",
    "bread",
    "butter",
    "water",
    "flour",
    "salt",
    "milk",
    "honey",
    "tahini",
    "wasabi",
    "pasta",
    "paprika",
    "masala",
    "quinoa",
    "tofu",
    "miso",
    "sake",
    "shortening",
];

/// Irregular plural → singular pairs (domain-relevant).
const IRREGULAR: &[(&str, &str)] = &[
    ("leaves", "leaf"),
    ("loaves", "loaf"),
    ("halves", "half"),
    ("calves", "calf"),
    ("knives", "knife"),
    ("wives", "wife"),
    ("lives", "life"),
    ("children", "child"),
    ("men", "man"),
    ("women", "woman"),
    ("teeth", "tooth"),
    ("feet", "foot"),
    ("geese", "goose"),
    ("mice", "mouse"),
    ("people", "person"),
    ("anchovies", "anchovy"),
];

/// Singularize one lowercase token.
///
/// Words of three characters or fewer are returned unchanged (avoids
/// "gas" → "ga" style damage on short tokens).
pub fn singularize(word: &str) -> String {
    singularized(word).into_owned()
}

/// [`singularize`] without the forced allocation: every rule except
/// `ies → y` rewrites the word by *truncating* an ASCII suffix, so the
/// result borrows from the input (or from the static irregular table).
/// This is what the alias resolver's ingestion hot path calls.
pub fn singularized(word: &str) -> Cow<'_, str> {
    if word.len() <= 3 {
        return Cow::Borrowed(word);
    }
    if INVARIANT.contains(&word) {
        return Cow::Borrowed(word);
    }
    for &(plural, singular) in IRREGULAR {
        if word == plural {
            return Cow::Borrowed(singular);
        }
    }

    // Suffix rules, most specific first. Matched suffixes are ASCII, so
    // byte-offset truncation below stays on char boundaries.
    if let Some(stem) = word.strip_suffix("ies") {
        // berries → berry; but short stems keep the e: "pies" → "pie"
        // (stem "p" — guard on stem length), which is a pure truncation.
        if stem.len() >= 2 {
            return Cow::Owned(format!("{stem}y"));
        }
        return Cow::Borrowed(&word[..word.len() - 1]);
    }
    if word.ends_with("oes") {
        // tomatoes → tomato, potatoes → potato.
        return Cow::Borrowed(&word[..word.len() - 2]);
    }
    if word.ends_with("sses") {
        // glasses → glass.
        return Cow::Borrowed(&word[..word.len() - 2]);
    }
    if word.ends_with("ses") {
        // molasses excluded above; "cheeses" → "cheese".
        return Cow::Borrowed(&word[..word.len() - 1]);
    }
    if word.ends_with("xes") {
        return Cow::Borrowed(&word[..word.len() - 2]);
    }
    if word.ends_with("zes") {
        // prizes → prize: keep the e.
        return Cow::Borrowed(&word[..word.len() - 1]);
    }
    if word.ends_with("ches") || word.ends_with("shes") {
        return Cow::Borrowed(&word[..word.len() - 2]);
    }
    if word.ends_with("ss") || word.ends_with("us") || word.ends_with("is") {
        // glass, octopus, couscous-like; also "is" endings (basis).
        return Cow::Borrowed(word);
    }
    if let Some(stem) = word.strip_suffix('s') {
        // peppers → pepper, eggs → egg; "peas" → "pea" (vowel stems are
        // fine — "bias"-like words were handled by the is/us/ss guard).
        return Cow::Borrowed(stem);
    }
    Cow::Borrowed(word)
}

/// Singularize every token in a slice.
pub fn singularize_all(tokens: &[String]) -> Vec<String> {
    tokens.iter().map(|t| singularize(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(w: &str) -> String {
        singularize(w)
    }

    #[test]
    fn common_food_plurals() {
        assert_eq!(s("tomatoes"), "tomato");
        assert_eq!(s("potatoes"), "potato");
        assert_eq!(s("peppers"), "pepper");
        assert_eq!(s("onions"), "onion");
        assert_eq!(s("eggs"), "egg");
        assert_eq!(s("carrots"), "carrot");
        assert_eq!(s("mushrooms"), "mushroom");
        assert_eq!(s("almonds"), "almond");
        assert_eq!(s("peas"), "pea");
        assert_eq!(s("olives"), "olive");
    }

    #[test]
    fn ies_rule() {
        assert_eq!(s("berries"), "berry");
        assert_eq!(s("cherries"), "cherry");
        assert_eq!(s("anchovies"), "anchovy");
        assert_eq!(s("pies"), "pie");
    }

    #[test]
    fn es_rules() {
        assert_eq!(s("peaches"), "peach");
        assert_eq!(s("radishes"), "radish");
        assert_eq!(s("boxes"), "box");
        assert_eq!(s("cheeses"), "cheese");
    }

    #[test]
    fn irregulars() {
        assert_eq!(s("leaves"), "leaf");
        assert_eq!(s("loaves"), "loaf");
        assert_eq!(s("halves"), "half");
        assert_eq!(s("knives"), "knife");
    }

    #[test]
    fn invariants_untouched() {
        for w in [
            "molasses",
            "couscous",
            "hummus",
            "asparagus",
            "rice",
            "bread",
            "milk",
            "watercress",
            "swiss",
        ] {
            assert_eq!(s(w), w, "{w} should be invariant");
        }
    }

    #[test]
    fn singular_words_untouched() {
        for w in ["tomato", "pepper", "cheese", "garlic", "basil", "cream"] {
            assert_eq!(s(w), w, "{w} already singular");
        }
    }

    #[test]
    fn sses_rule() {
        assert_eq!(s("glasses"), "glass");
        assert_eq!(s("molasses"), "molasses"); // invariant wins
    }

    #[test]
    fn us_is_ss_endings_untouched() {
        assert_eq!(s("glass"), "glass");
        assert_eq!(s("octopus"), "octopus");
        assert_eq!(s("citrus"), "citrus");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(s("gas"), "gas");
        assert_eq!(s("as"), "as");
        assert_eq!(s("is"), "is");
    }

    #[test]
    fn idempotent_on_outputs() {
        // Applying twice never changes the result further.
        for w in [
            "tomatoes",
            "berries",
            "leaves",
            "peaches",
            "eggs",
            "onions",
            "cheeses",
            "anchovies",
            "potatoes",
        ] {
            let once = s(w);
            assert_eq!(s(&once), once, "not idempotent for {w}");
        }
    }

    #[test]
    fn borrowed_except_ies_rewrite() {
        // Every rule but `ies → y` is a truncation, so the Cow borrows.
        for w in [
            "tomatoes", "peppers", "glasses", "peaches", "prizes", "pies",
        ] {
            assert!(
                matches!(singularized(w), Cow::Borrowed(_)),
                "{w} should singularize without allocating"
            );
        }
        assert!(matches!(singularized("berries"), Cow::Owned(_)));
        assert_eq!(singularized("prizes"), "prize");
        assert_eq!(singularized("boxes"), "box");
    }

    #[test]
    fn singularize_all_maps() {
        let toks: Vec<String> = ["roma", "tomatoes"].iter().map(|s| s.to_string()).collect();
        assert_eq!(singularize_all(&toks), vec!["roma", "tomato"]);
    }
}
