//! The copy-mutate culinary evolution model.
//!
//! The paper's conclusion cites Jain & Bagler, *Culinary evolution
//! models for Indian cuisines* (Physica A 503, 2018): a simple
//! copy-mutate process over recipes reproduces the empirical
//! ingredient-popularity scaling. The model:
//!
//! 1. start from a few uniformly random seed recipes over a fixed
//!    ingredient pool;
//! 2. repeatedly *copy* a uniformly chosen existing recipe and *mutate*
//!    it — each ingredient is independently replaced, with probability
//!    `mutation_rate`, by a uniformly random pool ingredient not
//!    already in the recipe;
//! 3. append the mutant; iterate until the target corpus size.
//!
//! Rich-get-richer dynamics emerge because popular ingredients are
//! copied forward; the resulting rank-frequency curve is heavy-tailed
//! like Fig 3b's empirical curves. The `repro_evolution` harness
//! compares the model against the generated world.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use culinaria_stats::pool;
use culinaria_stats::rng::derive_seed;

/// Configuration of the copy-mutate simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyMutateConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Ingredient pool size (the cuisine's available ingredients).
    pub pool_size: usize,
    /// Fixed recipe size (the paper's mean of ~9 is the natural pick).
    pub recipe_size: usize,
    /// Number of seed recipes drawn uniformly at random.
    pub n_seed_recipes: usize,
    /// Target total number of recipes.
    pub n_recipes: usize,
    /// Per-ingredient replacement probability during copying.
    pub mutation_rate: f64,
}

impl Default for CopyMutateConfig {
    fn default() -> Self {
        CopyMutateConfig {
            seed: 2018,
            pool_size: 300,
            recipe_size: 9,
            n_seed_recipes: 10,
            n_recipes: 2000,
            mutation_rate: 0.2,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyMutateResult {
    /// The generated recipes (pool indices, distinct within a recipe).
    pub recipes: Vec<Vec<u32>>,
    /// Usage frequency per pool ingredient.
    pub frequencies: Vec<u64>,
}

/// Run the copy-mutate model.
///
/// # Panics
/// Panics when `recipe_size > pool_size`, `recipe_size == 0`,
/// `n_seed_recipes == 0`, or `mutation_rate ∉ [0, 1]`.
pub fn run_copy_mutate(cfg: &CopyMutateConfig) -> CopyMutateResult {
    assert!(cfg.recipe_size > 0, "recipe_size must be positive");
    assert!(
        cfg.recipe_size <= cfg.pool_size,
        "recipe_size must not exceed pool_size"
    );
    assert!(cfg.n_seed_recipes > 0, "need at least one seed recipe");
    assert!(
        (0.0..=1.0).contains(&cfg.mutation_rate),
        "mutation_rate must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut recipes: Vec<Vec<u32>> = Vec::with_capacity(cfg.n_recipes);

    // Seed recipes: distinct uniform draws.
    for _ in 0..cfg.n_seed_recipes.min(cfg.n_recipes) {
        let idx = culinaria_stats::sampling::sample_without_replacement(
            cfg.pool_size,
            cfg.recipe_size,
            &mut rng,
        );
        recipes.push(idx.into_iter().map(|i| i as u32).collect());
    }

    // Copy-mutate until the corpus is full. Membership tests go through
    // a pool-sized bitmask instead of scanning the child — a pure
    // lookup, so the RNG stream (and thus the output) is unchanged.
    let mut member = vec![0u64; cfg.pool_size.div_ceil(64)];
    while recipes.len() < cfg.n_recipes {
        let parent = &recipes[rng.random_range(0..recipes.len())];
        let mut child = parent.clone();
        for &i in &child {
            member[i as usize / 64] |= 1 << (i % 64);
        }
        for slot in child.iter_mut() {
            if rng.random::<f64>() < cfg.mutation_rate {
                // Replace with a pool ingredient not already present.
                for _ in 0..64 {
                    let cand = rng.random_range(0..cfg.pool_size) as u32;
                    if member[cand as usize / 64] & (1 << (cand % 64)) == 0 {
                        let old = *slot;
                        member[old as usize / 64] &= !(1 << (old % 64));
                        member[cand as usize / 64] |= 1 << (cand % 64);
                        *slot = cand;
                        break;
                    }
                }
            }
        }
        for &i in &child {
            member[i as usize / 64] &= !(1 << (i % 64));
        }
        recipes.push(child);
    }

    let mut frequencies = vec![0u64; cfg.pool_size];
    for r in &recipes {
        for &i in r {
            frequencies[i as usize] += 1;
        }
    }
    CopyMutateResult {
        recipes,
        frequencies,
    }
}

/// Run `n_runs` independent copy-mutate simulations across the shared
/// worker pool (0 = available parallelism).
///
/// Run `r` uses `derive_seed(cfg.seed, r)` and results land in run
/// order, so the ensemble is identical for every thread count.
pub fn run_copy_mutate_ensemble(
    cfg: &CopyMutateConfig,
    n_runs: usize,
    n_threads: usize,
) -> Vec<CopyMutateResult> {
    pool::run(
        n_threads,
        n_runs,
        || (),
        |(), r| {
            let run_cfg = CopyMutateConfig {
                seed: derive_seed(cfg.seed, r as u64),
                ..*cfg
            };
            run_copy_mutate(&run_cfg)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_stats::powerlaw::{cumulative_share, zipf_exponent};

    #[test]
    fn corpus_size_and_recipe_shape() {
        let cfg = CopyMutateConfig {
            n_recipes: 500,
            ..CopyMutateConfig::default()
        };
        let res = run_copy_mutate(&cfg);
        assert_eq!(res.recipes.len(), 500);
        for r in &res.recipes {
            assert_eq!(r.len(), cfg.recipe_size);
            let mut d = r.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), cfg.recipe_size, "duplicate ingredient in {r:?}");
            assert!(r.iter().all(|&i| (i as usize) < cfg.pool_size));
        }
        let total: u64 = res.frequencies.iter().sum();
        assert_eq!(total as usize, 500 * cfg.recipe_size);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = CopyMutateConfig::default();
        assert_eq!(run_copy_mutate(&cfg), run_copy_mutate(&cfg));
        let other = CopyMutateConfig { seed: 99, ..cfg };
        assert_ne!(
            run_copy_mutate(&cfg).frequencies,
            run_copy_mutate(&other).frequencies
        );
    }

    #[test]
    fn rich_get_richer_beats_uniform() {
        // Under copy-mutate, the top ingredients hoard usage far beyond
        // the uniform expectation.
        let res = run_copy_mutate(&CopyMutateConfig::default());
        let shares = cumulative_share(&res.frequencies);
        let used = res.frequencies.iter().filter(|&&f| f > 0).count();
        let k = 30.min(shares.len());
        let top30 = shares[k - 1];
        let uniform30 = k as f64 / used as f64;
        assert!(
            top30 > uniform30 * 1.5,
            "top-30 share {top30} vs uniform {uniform30}"
        );
    }

    #[test]
    fn rank_curve_decays_like_a_power_law() {
        let res = run_copy_mutate(&CopyMutateConfig::default());
        let (exp, fit) = zipf_exponent(&res.frequencies).unwrap();
        assert!(exp > 0.2, "rank curve too flat: exponent {exp}");
        assert!(
            fit.r_squared > 0.5,
            "poor scaling fit: R² {}",
            fit.r_squared
        );
    }

    #[test]
    fn zero_mutation_freezes_seed_recipes() {
        let cfg = CopyMutateConfig {
            mutation_rate: 0.0,
            n_seed_recipes: 3,
            n_recipes: 100,
            ..CopyMutateConfig::default()
        };
        let res = run_copy_mutate(&cfg);
        // Every recipe is a copy of one of the three seeds.
        let seeds: Vec<Vec<u32>> = res.recipes[..3].to_vec();
        for r in &res.recipes {
            assert!(seeds.contains(r));
        }
    }

    #[test]
    fn ensemble_identical_for_any_thread_count() {
        let cfg = CopyMutateConfig {
            n_recipes: 200,
            ..CopyMutateConfig::default()
        };
        let serial = run_copy_mutate_ensemble(&cfg, 4, 1);
        assert_eq!(serial.len(), 4);
        // Distinct seeds per run.
        assert_ne!(serial[0].frequencies, serial[1].frequencies);
        for threads in [0, 2, 8] {
            assert_eq!(
                serial,
                run_copy_mutate_ensemble(&cfg, 4, threads),
                "{threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "recipe_size")]
    fn oversized_recipe_panics() {
        run_copy_mutate(&CopyMutateConfig {
            pool_size: 5,
            recipe_size: 9,
            ..CopyMutateConfig::default()
        });
    }
}
