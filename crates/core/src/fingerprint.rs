//! Culinary fingerprints and cuisine similarity.
//!
//! The paper frames its deviation analysis as access to "culinary
//! fingerprints" [ref 8] — the signature composition that identifies a
//! cuisine. This module makes the fingerprint a first-class object:
//!
//! * [`CuisineFingerprint`] — a cuisine's normalized ingredient-usage
//!   vector, category shares, and mean flavor sharing;
//! * [`cosine_similarity`] / [`similarity_matrix`] — pairwise cuisine
//!   similarity over the usage vectors;
//! * [`agglomerate`] — average-linkage hierarchical clustering of
//!   cuisines, exposing the geo-cultural structure of the corpus (the
//!   "regional cuisines are like languages/dialects" analogy of §II.A).

use std::collections::HashMap;

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_recipedb::{Cuisine, RecipeStore, Region};
use culinaria_stats::pool;
use culinaria_tabular::{Column, Frame};

use crate::composition::category_shares;
use crate::pairing::OverlapCache;

/// A cuisine's signature composition.
#[derive(Debug, Clone, PartialEq)]
pub struct CuisineFingerprint {
    /// The region.
    pub region: Region,
    /// Ingredient usage shares: ingredient → fraction of the cuisine's
    /// total ingredient usages (sums to 1 for non-empty cuisines).
    pub usage: HashMap<IngredientId, f64>,
    /// Category usage shares.
    pub category_shares: [f64; 21],
    /// Mean flavor sharing ⟨N_s⟩.
    pub mean_ns: f64,
}

impl CuisineFingerprint {
    /// Compute the fingerprint of a cuisine (available parallelism).
    pub fn of(db: &FlavorDb, cuisine: &Cuisine<'_>) -> CuisineFingerprint {
        CuisineFingerprint::of_with_threads(db, cuisine, 0)
    }

    /// [`CuisineFingerprint::of`] with an explicit worker count
    /// (0 = available parallelism).
    ///
    /// ⟨N_s⟩ goes through the packed-bitset [`OverlapCache`] (built in
    /// parallel) rather than per-recipe sorted merges; the cache scores
    /// are bit-identical to `pairing::recipe_pairing_score`, so the
    /// fingerprint is unchanged by the route or the thread count.
    pub fn of_with_threads(
        db: &FlavorDb,
        cuisine: &Cuisine<'_>,
        n_threads: usize,
    ) -> CuisineFingerprint {
        let freq = cuisine.frequencies();
        let total: u64 = freq.values().sum();
        let usage = if total == 0 {
            HashMap::new()
        } else {
            freq.into_iter()
                .map(|(id, c)| (id, c as f64 / total as f64))
                .collect()
        };
        let cache = OverlapCache::for_cuisine_with_threads(db, cuisine, n_threads);
        CuisineFingerprint {
            region: cuisine.region(),
            usage,
            category_shares: category_shares(db, cuisine),
            mean_ns: cache
                .mean_cuisine_score(cuisine)
                .expect("cuisine pool covers its own recipes"),
        }
    }

    /// The `k` highest-share ingredients, descending (ties by id).
    pub fn top_ingredients(&self, k: usize) -> Vec<(IngredientId, f64)> {
        let mut pairs: Vec<(IngredientId, f64)> =
            self.usage.iter().map(|(&id, &s)| (id, s)).collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

/// Cosine similarity of two fingerprints' ingredient-usage vectors.
/// 0 when either cuisine is empty; 1 for identical usage patterns.
pub fn cosine_similarity(a: &CuisineFingerprint, b: &CuisineFingerprint) -> f64 {
    let mut dot = 0.0;
    for (id, &sa) in &a.usage {
        if let Some(&sb) = b.usage.get(id) {
            dot += sa * sb;
        }
    }
    let na: f64 = a.usage.values().map(|s| s * s).sum::<f64>().sqrt();
    let nb: f64 = b.usage.values().map(|s| s * s).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Fingerprints for every populated region of a store (available
/// parallelism).
pub fn world_fingerprints(db: &FlavorDb, store: &RecipeStore) -> Vec<CuisineFingerprint> {
    world_fingerprints_with_threads(db, store, 0)
}

/// [`world_fingerprints`] with an explicit worker count.
///
/// Regions fan out across the worker pool (one task each, inner cache
/// builds serial) and results land in region order, so the output is
/// identical for every thread count.
pub fn world_fingerprints_with_threads(
    db: &FlavorDb,
    store: &RecipeStore,
    n_threads: usize,
) -> Vec<CuisineFingerprint> {
    let regions = store.regions();
    pool::run(
        n_threads,
        regions.len(),
        || (),
        |(), i| CuisineFingerprint::of_with_threads(db, &store.cuisine(regions[i]), 1),
    )
}

/// The full pairwise similarity matrix as a frame (`region` column plus
/// one column per region).
pub fn similarity_matrix(fingerprints: &[CuisineFingerprint]) -> Frame {
    let mut f = Frame::new();
    let codes: Vec<&str> = fingerprints.iter().map(|fp| fp.region.code()).collect();
    f.add_column("region", Column::from_strs(&codes))
        .expect("fresh frame");
    for (j, fb) in fingerprints.iter().enumerate() {
        let col: Vec<f64> = fingerprints
            .iter()
            .map(|fa| cosine_similarity(fa, fb))
            .collect();
        f.add_column(codes[j], Column::from_f64s(&col))
            .expect("region codes unique");
    }
    f
}

/// One merge step of the hierarchical clustering: the two clusters
/// merged (by member regions) and their average-linkage similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// Members of the first merged cluster.
    pub left: Vec<Region>,
    /// Members of the second merged cluster.
    pub right: Vec<Region>,
    /// Average pairwise similarity between the two clusters at merge
    /// time.
    pub similarity: f64,
}

/// Average-linkage agglomerative clustering over cuisine fingerprints.
/// Returns the merge sequence from most to least similar (n−1 merges
/// for n fingerprints).
pub fn agglomerate(fingerprints: &[CuisineFingerprint]) -> Vec<Merge> {
    let n = fingerprints.len();
    if n < 2 {
        return Vec::new();
    }
    // Precompute pairwise similarities.
    let mut sim = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = cosine_similarity(&fingerprints[i], &fingerprints[j]);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }
    // Active clusters as member-index lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut merges = Vec::with_capacity(n - 1);

    while clusters.len() > 1 {
        // Find the pair with maximal average linkage.
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut total = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        total += sim[i][j];
                    }
                }
                let avg = total / (clusters[a].len() * clusters[b].len()) as f64;
                if avg > best.2 {
                    best = (a, b, avg);
                }
            }
        }
        let (a, b, s) = best;
        let right = clusters.swap_remove(b);
        let left = clusters.swap_remove(if a > b { a - 1 } else { a });
        merges.push(Merge {
            left: left.iter().map(|&i| fingerprints[i].region).collect(),
            right: right.iter().map(|&i| fingerprints[i].region).collect(),
            similarity: s,
        });
        let mut merged = left;
        merged.extend(right);
        clusters.push(merged);
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    fn world() -> culinaria_datagen::World {
        generate_world(&WorldConfig::tiny())
    }

    #[test]
    fn fingerprint_usage_sums_to_one() {
        let w = world();
        for fp in world_fingerprints(&w.flavor, &w.recipes) {
            let total: f64 = fp.usage.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", fp.region.code());
            let cat_total: f64 = fp.category_shares.iter().sum();
            assert!((cat_total - 1.0).abs() < 1e-9);
            assert!(fp.mean_ns >= 0.0);
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let w = world();
        let fps = world_fingerprints(&w.flavor, &w.recipes);
        for fp in &fps {
            assert!((cosine_similarity(fp, fp) - 1.0).abs() < 1e-9);
        }
        // Symmetry.
        assert!(
            (cosine_similarity(&fps[0], &fps[1]) - cosine_similarity(&fps[1], &fps[0])).abs()
                < 1e-12
        );
    }

    #[test]
    fn world_fingerprints_identical_for_any_thread_count() {
        let w = world();
        let serial = world_fingerprints_with_threads(&w.flavor, &w.recipes, 1);
        for threads in [0, 2, 8] {
            let parallel = world_fingerprints_with_threads(&w.flavor, &w.recipes, threads);
            assert_eq!(serial, parallel, "{threads} threads");
        }
        // The cache-backed ⟨N_s⟩ matches the direct per-recipe fold.
        for fp in &serial {
            let direct =
                crate::pairing::mean_cuisine_score(&w.flavor, &w.recipes.cuisine(fp.region));
            assert_eq!(
                fp.mean_ns.to_bits(),
                direct.to_bits(),
                "{}",
                fp.region.code()
            );
        }
    }

    #[test]
    fn top_ingredients_descending() {
        let w = world();
        let fp = CuisineFingerprint::of(&w.flavor, &w.recipes.cuisine(Region::Italy));
        let top = fp.top_ingredients(5);
        assert_eq!(top.len(), 5);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn similarity_matrix_shape() {
        let w = world();
        let fps = world_fingerprints(&w.flavor, &w.recipes);
        let m = similarity_matrix(&fps);
        assert_eq!(m.n_rows(), 22);
        assert_eq!(m.n_cols(), 23);
        // Diagonal is 1.
        for (i, fp) in fps.iter().enumerate() {
            let v = m
                .get(i, fp.region.code())
                .expect("cell")
                .as_float()
                .expect("float");
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn agglomeration_produces_n_minus_one_merges() {
        let w = world();
        let fps = world_fingerprints(&w.flavor, &w.recipes);
        let merges = agglomerate(&fps);
        assert_eq!(merges.len(), 21);
        // Similarities are finite and in [0, 1]; the final merge joins
        // everything.
        for m in &merges {
            assert!((0.0..=1.0).contains(&m.similarity));
        }
        let last = merges.last().expect("21 merges");
        assert_eq!(last.left.len() + last.right.len(), 22);
        // Merge similarities trend downward (not strictly monotone for
        // average linkage, but the first should beat the last).
        assert!(merges[0].similarity >= last.similarity);
    }

    #[test]
    fn degenerate_agglomeration() {
        assert!(agglomerate(&[]).is_empty());
        let w = world();
        let one = vec![CuisineFingerprint::of(
            &w.flavor,
            &w.recipes.cuisine(Region::Italy),
        )];
        assert!(agglomerate(&one).is_empty());
    }
}
