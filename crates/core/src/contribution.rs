//! Ingredient contribution to a cuisine's flavor sharing (Fig 5).
//!
//! The paper measures each ingredient's contribution as the *percentage
//! change in the cuisine's food-pairing score* when the ingredient is
//! removed from the cuisine: every recipe drops the ingredient, and
//! recipes left with fewer than two ingredients stop contributing.
//!
//! The naive computation rescoring the full cuisine per ingredient is
//! O(|pool| × Σ n_R²); this implementation only rescores the recipes
//! that actually contain the ingredient (via the cuisine's recipe list)
//! and reuses the [`OverlapCache`], bringing the sweep to
//! O(Σ_{i} Σ_{R ∋ i} n_R²) cache lookups.

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_recipedb::Cuisine;
use culinaria_tabular::{Column, Frame};

use crate::pairing::OverlapCache;

/// Contribution of one ingredient.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// The ingredient.
    pub ingredient: IngredientId,
    /// Canonical name.
    pub name: String,
    /// Percentage change of ⟨N_s⟩ caused by *removing* the ingredient,
    /// sign-flipped so that a positive value means the ingredient
    /// *raises* the cuisine's flavor sharing:
    /// `100 · (⟨N_s⟩_with − ⟨N_s⟩_without) / ⟨N_s⟩_with`.
    pub percent_change: f64,
    /// Number of recipes using the ingredient.
    pub n_recipes: usize,
}

/// Compute contributions for every ingredient of the cuisine.
///
/// Returns an empty vector when the cuisine mean is zero (no pairing
/// signal to perturb).
pub fn ingredient_contributions(db: &FlavorDb, cuisine: &Cuisine<'_>) -> Vec<Contribution> {
    let cache = OverlapCache::for_cuisine(db, cuisine);
    // Per-recipe local-index lists and scores for the full cuisine.
    let mut recipe_locals: Vec<Vec<u32>> = Vec::new();
    for r in cuisine.recipes() {
        if r.size() < 2 {
            continue;
        }
        let locals: Vec<u32> = r
            .ingredients()
            .iter()
            .map(|&id| cache.local_index(id).expect("pool covers cuisine"))
            .collect();
        recipe_locals.push(locals);
    }
    let n_scored = recipe_locals.len();
    if n_scored == 0 {
        return Vec::new();
    }
    let scores: Vec<f64> = recipe_locals.iter().map(|l| cache.score_local(l)).collect();
    let total: f64 = scores.iter().sum();
    let base_mean = total / n_scored as f64;
    if base_mean == 0.0 {
        return Vec::new();
    }

    // Recipes containing each pool ingredient (by local index).
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); cache.len()];
    for (ri, locals) in recipe_locals.iter().enumerate() {
        for &l in locals {
            containing[l as usize].push(ri as u32);
        }
    }

    let mut out = Vec::with_capacity(cache.len());
    let mut scratch: Vec<u32> = Vec::new();
    for (local, recipes) in containing.iter().enumerate() {
        let ingredient = cache.pool()[local];
        // Rescore only affected recipes with the ingredient dropped.
        let mut new_total = total;
        let mut new_count = n_scored;
        for &ri in recipes {
            let locals = &recipe_locals[ri as usize];
            scratch.clear();
            scratch.extend(locals.iter().copied().filter(|&l| l != local as u32));
            new_total -= scores[ri as usize];
            if scratch.len() >= 2 {
                new_total += cache.score_local(&scratch);
            } else {
                new_count -= 1;
            }
        }
        let without_mean = if new_count == 0 {
            0.0
        } else {
            new_total / new_count as f64
        };
        let percent_change = 100.0 * (base_mean - without_mean) / base_mean;
        out.push(Contribution {
            ingredient,
            name: db
                .ingredient(ingredient)
                .expect("live ingredient")
                .name
                .clone(),
            percent_change,
            n_recipes: recipes.len(),
        });
    }
    out
}

/// The top `k` contributors. With `to_positive = true`, the ingredients
/// whose removal most *decreases* flavor sharing (Fig 5a, the pillars of
/// uniform pairing); with `false`, those whose removal most *increases*
/// it (Fig 5b, the pillars of contrasting pairing).
pub fn top_contributors(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    k: usize,
    to_positive: bool,
) -> Vec<Contribution> {
    let mut all = ingredient_contributions(db, cuisine);
    all.sort_by(|a, b| {
        let ord = a.percent_change.total_cmp(&b.percent_change);
        if to_positive {
            ord.reverse()
        } else {
            ord
        }
    });
    all.truncate(k);
    all
}

/// Render contributions as a frame (`ingredient`, `percent_change`,
/// `n_recipes`).
pub fn contributions_to_frame(contributions: &[Contribution]) -> Frame {
    let mut f = Frame::new();
    let names: Vec<&str> = contributions.iter().map(|c| c.name.as_str()).collect();
    f.add_column("ingredient", Column::from_strs(&names))
        .expect("fresh frame");
    f.add_column(
        "percent_change",
        Column::from_f64s(
            &contributions
                .iter()
                .map(|c| c.percent_change)
                .collect::<Vec<_>>(),
        ),
    )
    .expect("fresh column");
    f.add_column(
        "n_recipes",
        Column::from_i64s(
            &contributions
                .iter()
                .map(|c| c.n_recipes as i64)
                .collect::<Vec<_>>(),
        ),
    )
    .expect("fresh column");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::mean_cuisine_score;
    use culinaria_flavordb::{Category, MoleculeId};
    use culinaria_recipedb::{RecipeStore, Region, Source};

    /// glue (id 0) shares molecules with everything; loners share
    /// nothing with anything.
    fn fixture() -> (FlavorDb, RecipeStore) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(40);
        db.add_ingredient("glue", Category::Spice, (0..10).map(MoleculeId).collect())
            .unwrap();
        for i in 0..4u32 {
            // Each loner: molecule 0 (shared with glue) + private ones.
            let mut mols = vec![MoleculeId(i % 10)];
            mols.extend((10 + i * 5..10 + i * 5 + 4).map(MoleculeId));
            db.add_ingredient(&format!("loner{i}"), Category::Vegetable, mols)
                .unwrap();
        }
        let mut store = RecipeStore::new();
        let ing = |i: u32| IngredientId(i);
        store
            .add_recipe(
                "a",
                Region::Italy,
                Source::Synthetic,
                vec![ing(0), ing(1), ing(2)],
            )
            .unwrap();
        store
            .add_recipe(
                "b",
                Region::Italy,
                Source::Synthetic,
                vec![ing(0), ing(3), ing(4)],
            )
            .unwrap();
        store
            .add_recipe("c", Region::Italy, Source::Synthetic, vec![ing(1), ing(3)])
            .unwrap();
        (db, store)
    }

    #[test]
    fn glue_ingredient_has_largest_positive_contribution() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let contributions = ingredient_contributions(&db, &cuisine);
        assert_eq!(contributions.len(), 5);
        let glue = contributions
            .iter()
            .find(|c| c.name == "glue")
            .expect("glue present");
        // Removing the high-overlap hub must reduce the mean: positive
        // percent_change under our sign convention.
        assert!(glue.percent_change > 0.0);
        // And it should be the top positive contributor.
        let top = top_contributors(&db, &cuisine, 1, true);
        assert_eq!(top[0].name, "glue");
        assert_eq!(top[0].n_recipes, 2);
    }

    #[test]
    fn contributions_match_brute_force() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let base = mean_cuisine_score(&db, &cuisine);
        for c in ingredient_contributions(&db, &cuisine) {
            // Brute force: rebuild the cuisine without the ingredient.
            let mut without = RecipeStore::new();
            for r in cuisine.recipes() {
                let ings: Vec<IngredientId> = r
                    .ingredients()
                    .iter()
                    .copied()
                    .filter(|&i| i != c.ingredient)
                    .collect();
                if !ings.is_empty() {
                    without
                        .add_recipe(&r.name, r.region, r.source, ings)
                        .unwrap();
                }
            }
            // Brute-force mean over recipes of size ≥ 2.
            let wc = without.cuisine(Region::Italy);
            let mut total = 0.0;
            let mut n = 0;
            for r in wc.recipes() {
                if r.size() >= 2 {
                    total += crate::pairing::recipe_pairing_score(&db, r.ingredients());
                    n += 1;
                }
            }
            let without_mean = if n == 0 { 0.0 } else { total / n as f64 };
            let expected = 100.0 * (base - without_mean) / base;
            assert!(
                (c.percent_change - expected).abs() < 1e-9,
                "{}: {} vs {}",
                c.name,
                c.percent_change,
                expected
            );
        }
    }

    #[test]
    fn negative_direction_sorting() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let neg = top_contributors(&db, &cuisine, 5, false);
        let pos = top_contributors(&db, &cuisine, 5, true);
        assert_eq!(neg.len(), 5);
        // Opposite orderings (compare values: ties make names ambiguous).
        assert_eq!(
            neg.first().unwrap().percent_change,
            pos.last().unwrap().percent_change
        );
        // k truncation.
        assert_eq!(top_contributors(&db, &cuisine, 2, true).len(), 2);
    }

    #[test]
    fn empty_cuisine_yields_empty() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Japan);
        assert!(ingredient_contributions(&db, &cuisine).is_empty());
    }

    #[test]
    fn frame_rendering() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let f = contributions_to_frame(&top_contributors(&db, &cuisine, 3, true));
        assert_eq!(f.n_rows(), 3);
        assert!(f.has_column("ingredient"));
        assert!(f.has_column("percent_change"));
    }
}
