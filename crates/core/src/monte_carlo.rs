//! The Monte-Carlo engine: 100,000 randomized recipes per null model,
//! scored against the overlap cache, summarized as a
//! [`NullEnsemble`].
//!
//! Parallelism is the shared worker pool ([`culinaria_stats::pool`])
//! over fixed-size *blocks* of recipes. Each block derives its PRNG
//! seed deterministically from `(run seed, model, block index)` and
//! accumulates its own [`RunningStats`]; the pool returns block results
//! in block order (one lock-free slot per block, one writer per slot),
//! and they are merged in that canonical order. The result is therefore
//! **bit-identical regardless of thread count** — a design choice
//! DESIGN.md calls out.
//!
//! Workers carry a reusable `McScratch` (recipe buffer + distinctness
//! bitmask), so the steady state of a run allocates nothing per sampled
//! recipe.

use rand::rngs::StdRng;
use rand::SeedableRng;

use culinaria_obs::Metrics;
use culinaria_stats::rng::derive_seed;
use culinaria_stats::{fault, pool};
use culinaria_stats::{NullEnsemble, RunningStats};

use crate::error::StageFailure;
use crate::null_models::{CuisineSampler, NullModel, SampleScratch};
use crate::pairing::OverlapCache;

/// Recipes per scheduling block (also the determinism granularity).
pub(crate) const BLOCK: usize = 2048;

/// Per-worker reusable buffers for Monte-Carlo sampling.
#[derive(Debug, Default)]
pub(crate) struct McScratch {
    recipe: Vec<u32>,
    sample: SampleScratch,
}

impl McScratch {
    pub(crate) fn new() -> McScratch {
        McScratch::default()
    }
}

/// Sample and score one block of recipes — the unit of work both the
/// single-cuisine runner and the flattened world pipeline feed to the
/// pool. `run_seed` is the seed the whole run was configured with;
/// the block's own stream is derived from `(run_seed, model, block)`,
/// so a block's statistics depend only on those three values.
pub(crate) fn block_stats(
    cache: &OverlapCache,
    sampler: &CuisineSampler,
    model: NullModel,
    run_seed: u64,
    block: usize,
    n_recipes: usize,
    scratch: &mut McScratch,
) -> RunningStats {
    let lo = block * BLOCK;
    let hi = ((block + 1) * BLOCK).min(n_recipes);
    let stream = (model.index() as u64) << 32 | block as u64;
    let mut rng = StdRng::seed_from_u64(derive_seed(run_seed, stream));
    let mut stats = RunningStats::new();
    for _ in lo..hi {
        sampler.generate_into(model, &mut rng, &mut scratch.recipe, &mut scratch.sample);
        stats.push(cache.score_local(&scratch.recipe));
    }
    stats
}

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of randomized recipes per model (paper: 100,000).
    pub n_recipes: usize,
    /// Run seed; combined with the model and block index per stream.
    pub seed: u64,
    /// Worker threads; 0 means use the available parallelism.
    pub n_threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            n_recipes: 100_000,
            seed: 0xC0FFEE,
            n_threads: 0,
        }
    }
}

impl MonteCarloConfig {
    /// A reduced configuration for tests and quick runs.
    pub fn quick(n_recipes: usize) -> Self {
        MonteCarloConfig {
            n_recipes,
            ..MonteCarloConfig::default()
        }
    }
}

/// Run one null model for one cuisine: sample `cfg.n_recipes` recipes,
/// score each against `cache`, and summarize.
///
/// Returns `None` when the ensemble is degenerate (fewer than two
/// recipes sampled).
pub fn run_null_model(
    cache: &OverlapCache,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
) -> Option<NullEnsemble> {
    run_null_model_observed(cache, sampler, model, cfg, &Metrics::disabled())
}

/// [`run_null_model`] instrumented through `metrics`:
///
/// * span `mc.run` — one call per (cuisine, model) run;
/// * counters `mc.recipes` and `mc.blocks` — sampled recipes and
///   scheduling blocks;
/// * histogram `mc.block_us` — per-block wall time (its spread shows
///   sampler imbalance between full and partial blocks);
/// * the shared `pool.*` instruments.
///
/// The ensemble is bit-identical to the unobserved run: block seeds,
/// sampling, and the block-order merge are untouched, and the only
/// per-block cost when enabled is one clock read pair.
pub fn run_null_model_observed(
    cache: &OverlapCache,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Option<NullEnsemble> {
    try_run_null_model_observed(cache, sampler, model, cfg, metrics)
        .unwrap_or_else(|failure| panic!("Monte-Carlo run failed: {failure}"))
}

/// Fallible [`run_null_model`]: a panicking sampling block becomes a
/// structured [`StageFailure`] at stage `mc.block` (lowest block index
/// wins) instead of a crash.
pub fn try_run_null_model(
    cache: &OverlapCache,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
) -> Result<Option<NullEnsemble>, StageFailure> {
    try_run_null_model_observed(cache, sampler, model, cfg, &Metrics::disabled())
}

/// Fallible [`run_null_model_observed`]. On success the ensemble and
/// recorded metrics are bit-identical to the infallible run; on failure
/// the `error.mc.block` counter is bumped and the lowest failing block
/// index is reported, identically for any thread count.
pub fn try_run_null_model_observed(
    cache: &OverlapCache,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<NullEnsemble>, StageFailure> {
    let n_blocks = cfg.n_recipes.div_ceil(BLOCK);
    if n_blocks == 0 {
        return Ok(None);
    }
    let run_span = metrics.span("mc.run");
    let run_guard = run_span.enter();
    metrics.counter("mc.recipes").add(cfg.n_recipes as u64);
    metrics.counter("mc.blocks").add(n_blocks as u64);
    let block_hist = metrics.histogram("mc.block_us");
    let blocks = pool::try_run_observed(
        cfg.n_threads,
        n_blocks,
        &pool::PoolObs::new(metrics),
        McScratch::new,
        |scratch, b| -> Result<RunningStats, fault::InjectedFault> {
            fault::probe("mc.block", b)?;
            let timer = block_hist.start();
            let stats = block_stats(cache, sampler, model, cfg.seed, b, cfg.n_recipes, scratch);
            timer.stop();
            Ok(stats)
        },
    )
    .map_err(|f| StageFailure::from_task("mc.block", f).record(metrics))?;

    // Deterministic merge in block order (the pool already returned the
    // blocks in that order).
    let mut total = RunningStats::new();
    for s in &blocks {
        total.merge(s);
    }
    let out = NullEnsemble::from_running(&total);
    run_guard.stop();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::{Category, FlavorDb, IngredientId, MoleculeId};
    use culinaria_recipedb::{RecipeStore, Region, Source};

    fn fixture() -> (FlavorDb, RecipeStore) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(30);
        // 8 ingredients with overlapping profiles.
        for i in 0..8u32 {
            let mols: Vec<MoleculeId> = (i..i + 5).map(MoleculeId).collect();
            let cat = if i < 4 {
                Category::Herb
            } else {
                Category::Meat
            };
            db.add_ingredient(&format!("ing{i}"), cat, mols).unwrap();
        }
        let mut store = RecipeStore::new();
        let ing = |i: u32| IngredientId(i);
        store
            .add_recipe(
                "r1",
                Region::Italy,
                Source::Synthetic,
                vec![ing(0), ing(1), ing(2)],
            )
            .unwrap();
        store
            .add_recipe(
                "r2",
                Region::Italy,
                Source::Synthetic,
                vec![ing(3), ing(4), ing(5)],
            )
            .unwrap();
        store
            .add_recipe(
                "r3",
                Region::Italy,
                Source::Synthetic,
                vec![ing(5), ing(6), ing(7), ing(0)],
            )
            .unwrap();
        (db, store)
    }

    #[test]
    fn ensemble_statistics_are_sane() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let cfg = MonteCarloConfig::quick(5000);
        for model in NullModel::ALL {
            let e = run_null_model(&cache, &sampler, model, &cfg).unwrap();
            assert_eq!(e.n, 5000);
            assert!(e.mean >= 0.0, "{model}: mean {}", e.mean);
            assert!(e.std_dev > 0.0, "{model}: zero spread");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let base = MonteCarloConfig {
            n_recipes: 8192,
            seed: 42,
            n_threads: 1,
        };
        let a = run_null_model(&cache, &sampler, NullModel::Frequency, &base).unwrap();
        for threads in [2, 3, 8] {
            let cfg = MonteCarloConfig {
                n_threads: threads,
                ..base
            };
            let b = run_null_model(&cache, &sampler, NullModel::Frequency, &cfg).unwrap();
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{threads} threads");
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let a = run_null_model(
            &cache,
            &sampler,
            NullModel::Random,
            &MonteCarloConfig {
                n_recipes: 2000,
                seed: 1,
                n_threads: 2,
            },
        )
        .unwrap();
        let b = run_null_model(
            &cache,
            &sampler,
            NullModel::Random,
            &MonteCarloConfig {
                n_recipes: 2000,
                seed: 2,
                n_threads: 2,
            },
        )
        .unwrap();
        assert_ne!(a.mean.to_bits(), b.mean.to_bits());
    }

    #[test]
    fn observed_run_matches_and_records() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let cfg = MonteCarloConfig {
            n_recipes: 5000, // 3 blocks, last partial
            seed: 7,
            n_threads: 2,
        };
        let plain = run_null_model(&cache, &sampler, NullModel::Frequency, &cfg).unwrap();
        let metrics = Metrics::enabled();
        let observed =
            run_null_model_observed(&cache, &sampler, NullModel::Frequency, &cfg, &metrics)
                .unwrap();
        assert_eq!(plain.mean.to_bits(), observed.mean.to_bits());
        assert_eq!(plain.std_dev.to_bits(), observed.std_dev.to_bits());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("mc.recipes"), Some(5000));
        assert_eq!(snap.counter("mc.blocks"), Some(3));
        assert_eq!(snap.span("mc.run").unwrap().calls, 1);
        assert_eq!(snap.histogram("mc.block_us").unwrap().count, 3);
        assert_eq!(snap.counter("pool.runs"), Some(1));
    }

    #[test]
    fn try_run_matches_run_bit_for_bit() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        for threads in [1, 2, 8] {
            let cfg = MonteCarloConfig {
                n_recipes: 5000,
                seed: 11,
                n_threads: threads,
            };
            let plain = run_null_model(&cache, &sampler, NullModel::Frequency, &cfg).unwrap();
            let fallible = try_run_null_model(&cache, &sampler, NullModel::Frequency, &cfg)
                .expect("no faults")
                .expect("non-degenerate");
            assert_eq!(plain.mean.to_bits(), fallible.mean.to_bits(), "{threads}");
            assert_eq!(plain.std_dev.to_bits(), fallible.std_dev.to_bits());
            assert_eq!(plain.n, fallible.n);
        }
        assert_eq!(
            try_run_null_model(
                &cache,
                &sampler,
                NullModel::Random,
                &MonteCarloConfig::quick(0)
            ),
            Ok(None)
        );
    }

    #[test]
    fn zero_recipes_gives_none() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let cfg = MonteCarloConfig::quick(0);
        assert!(run_null_model(&cache, &sampler, NullModel::Random, &cfg).is_none());
    }

    #[test]
    fn partial_final_block_counts_exactly() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let cfg = MonteCarloConfig::quick(3000); // not a multiple of BLOCK
        let e = run_null_model(&cache, &sampler, NullModel::Random, &cfg).unwrap();
        assert_eq!(e.n, 3000);
    }
}
