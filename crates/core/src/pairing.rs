//! The flavor-sharing (food-pairing) score and its overlap cache.
//!
//! For a recipe R with n_R ≥ 2 ingredients, the paper defines
//!
//! ```text
//! N_s(R) = 2 / (n_R (n_R − 1)) · Σ_{i<j} |F_i ∩ F_j|
//! ```
//!
//! the mean number of flavor compounds shared by a pair of the recipe's
//! ingredients. A cuisine's score is the average of N_s over its
//! recipes.
//!
//! Cuisine-scale analyses touch the same ingredient pairs millions of
//! times (observed scoring, four null models × 100,000 recipes,
//! leave-one-out contributions), so [`OverlapCache`] precomputes the
//! symmetric pairwise-overlap matrix over the cuisine's ingredient pool
//! once; scoring then reduces to O(n²) table lookups per recipe. The
//! `pairing_score` Criterion bench quantifies the cache's advantage
//! over direct set intersection (an ablation called out in DESIGN.md).

use std::collections::HashMap;

use culinaria_flavordb::{kernel, FlavorDb, IngredientId, MoleculeId, MoleculeUniverse};
use culinaria_obs::Metrics;
use culinaria_recipedb::Cuisine;
use culinaria_stats::{fault, pool, tile};

use crate::error::StageFailure;
use crate::view::{CuisineView, FlavorViewRef};

/// N_s(R) computed directly from flavor profiles (no cache).
///
/// Returns 0 for recipes with fewer than two ingredients — such recipes
/// carry no pairing information (the paper's averages are over pairs).
///
/// ```
/// use culinaria_core::pairing::recipe_pairing_score;
/// use culinaria_flavordb::{Category, FlavorDb};
///
/// let mut db = FlavorDb::new();
/// let m: Vec<_> = (0..4)
///     .map(|k| db.add_molecule(&format!("m{k}"), &[]).unwrap())
///     .collect();
/// let a = db.add_ingredient("a", Category::Herb, vec![m[0], m[1]]).unwrap();
/// let b = db.add_ingredient("b", Category::Herb, vec![m[1], m[2]]).unwrap();
/// let c = db.add_ingredient("c", Category::Meat, vec![m[3]]).unwrap();
///
/// // Pairs (a,b)=1, (a,c)=0, (b,c)=0 → Ns = 2·1/(3·2) = 1/3.
/// let ns = recipe_pairing_score(&db, &[a, b, c]);
/// assert!((ns - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn recipe_pairing_score(db: &FlavorDb, ingredients: &[IngredientId]) -> f64 {
    let n = ingredients.len();
    if n < 2 {
        return 0.0;
    }
    let profiles: Vec<_> = ingredients
        .iter()
        .map(|&id| {
            &db.ingredient(id)
                .expect("recipes only reference live ingredients")
                .profile
        })
        .collect();
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += profiles[i].shared_count(profiles[j]);
        }
    }
    (2.0 * total as f64) / (n as f64 * (n as f64 - 1.0))
}

/// [`recipe_pairing_score`] over a representation-agnostic flavor view:
/// works for owned databases and zero-copy artifacts alike, and returns
/// `None` (instead of panicking) when an id is dead — the right shape
/// for serving externally-supplied ingredient sets. Profiles are stored
/// sorted in both representations, so the two-pointer intersection
/// counts match [`FlavorProfile::shared_count`] exactly and the score
/// is bit-identical to the owned path (and to
/// [`OverlapCache::score_ids`] when every id is in the cache's pool).
///
/// [`FlavorProfile::shared_count`]: culinaria_flavordb::FlavorProfile::shared_count
pub fn recipe_pairing_score_view(
    view: FlavorViewRef<'_>,
    ingredients: &[IngredientId],
) -> Option<f64> {
    let n = ingredients.len();
    if n < 2 {
        return Some(0.0);
    }
    let mut profiles = Vec::with_capacity(n);
    for &id in ingredients {
        profiles.push(view.profile_molecules(id).ok()?);
    }
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += shared_sorted(profiles[i], profiles[j]);
        }
    }
    Some((2.0 * total as f64) / (n as f64 * (n as f64 - 1.0)))
}

/// Two-pointer intersection size of two sorted molecule slices — the
/// same merge walk as `FlavorProfile::shared_count`.
fn shared_sorted(a: &[MoleculeId], b: &[MoleculeId]) -> usize {
    let (mut i, mut j, mut shared) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

/// Quantity-weighted flavor sharing — the §V extension "how to
/// incorporate … quantity of ingredients":
///
/// ```text
/// N_s^w(R) = Σ_{i<j} w_i w_j |F_i ∩ F_j| / Σ_{i<j} w_i w_j
/// ```
///
/// With equal weights this reduces exactly to [`recipe_pairing_score`].
/// Returns 0 for fewer than two positively-weighted ingredients or a
/// zero total pair weight.
pub fn weighted_recipe_pairing_score(db: &FlavorDb, ingredients: &[(IngredientId, f64)]) -> f64 {
    let items: Vec<(&culinaria_flavordb::FlavorProfile, f64)> = ingredients
        .iter()
        .filter(|&&(_, w)| w > 0.0)
        .map(|&(id, w)| {
            (
                &db.ingredient(id)
                    .expect("recipes only reference live ingredients")
                    .profile,
                w,
            )
        })
        .collect();
    if items.len() < 2 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let pair_w = items[i].1 * items[j].1;
            num += pair_w * items[i].0.shared_count(items[j].0) as f64;
            den += pair_w;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Mean flavor sharing of a cuisine: ⟨N_s⟩ over its recipes (recipes
/// with fewer than two ingredients are skipped). 0 for an empty cuisine.
pub fn mean_cuisine_score(db: &FlavorDb, cuisine: &Cuisine<'_>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for r in cuisine.recipes() {
        if r.size() >= 2 {
            total += recipe_pairing_score(db, r.ingredients());
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Precomputed pairwise overlap matrix over an ingredient pool.
///
/// The pool is a cuisine's distinct ingredient set mapped to dense
/// *local* indices `0..len`; overlaps are stored in a packed upper
/// triangle of `u32`.
#[derive(Debug, Clone)]
pub struct OverlapCache {
    pool: Vec<IngredientId>,
    local: HashMap<IngredientId, u32>,
    /// Packed strict upper triangle, row-major: entry (i, j), i < j, at
    /// `i*(2n−i−1)/2 + (j−i−1)`.
    tri: Vec<u32>,
}

impl OverlapCache {
    /// Build the cache for an ingredient pool, using the available
    /// parallelism for the O(n²) intersection sweep.
    ///
    /// Profiles are first packed as bitsets over the pool's own
    /// molecule universe ([`culinaria_flavordb::MoleculeUniverse`]), so
    /// each intersection is a lane-widened word-AND + popcount
    /// ([`culinaria_flavordb::kernel`]) instead of a sorted merge. The
    /// strict upper triangle is cut into L2-sized row×column tiles
    /// ([`culinaria_stats::tile`]) and the tiles fan out across the
    /// worker pool, so each packed strip is streamed from memory once
    /// per tile instead of once per cell. Tile geometry never depends
    /// on the requested thread count, and overlap counts are exact
    /// integers, so the result is bit-identical for every thread
    /// count.
    pub fn build(db: &FlavorDb, pool: &[IngredientId]) -> OverlapCache {
        OverlapCache::build_with_threads(db, pool, 0)
    }

    /// [`OverlapCache::build`] with an explicit worker count
    /// (0 = available parallelism).
    pub fn build_with_threads(
        db: &FlavorDb,
        pool: &[IngredientId],
        n_threads: usize,
    ) -> OverlapCache {
        OverlapCache::build_observed(db, pool, n_threads, &Metrics::disabled())
    }

    /// [`OverlapCache::build_with_threads`] instrumented through
    /// `metrics`: spans `overlap.build` (whole build), `overlap.build.pack`
    /// (bitset packing) and `overlap.build.sweep` (the parallel O(n²)
    /// intersection sweep), gauge `overlap.pool_size`, counter
    /// `overlap.cells` (triangle entries computed), plus the shared
    /// `pool.*` instruments. The cache is bit-identical to the
    /// unobserved build.
    ///
    /// # Panics
    /// Panics on a dead ingredient id — delegate to
    /// [`OverlapCache::try_build_observed`] to get a structured error
    /// instead.
    pub fn build_observed(
        db: &FlavorDb,
        pool: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
    ) -> OverlapCache {
        OverlapCache::try_build_observed(db, pool, n_threads, metrics)
            .unwrap_or_else(|failure| panic!("overlap cache build failed: {failure}"))
    }

    /// Fallible [`OverlapCache::build`]: a pool entry whose ingredient
    /// id is dead (removed or out of range) becomes a structured
    /// [`StageFailure`] at stage `overlap.pack` instead of a panic.
    pub fn try_build(db: &FlavorDb, pool: &[IngredientId]) -> Result<OverlapCache, StageFailure> {
        OverlapCache::try_build_with_threads(db, pool, 0)
    }

    /// [`OverlapCache::try_build`] with an explicit worker count
    /// (0 = available parallelism).
    pub fn try_build_with_threads(
        db: &FlavorDb,
        pool: &[IngredientId],
        n_threads: usize,
    ) -> Result<OverlapCache, StageFailure> {
        OverlapCache::try_build_observed(db, pool, n_threads, &Metrics::disabled())
    }

    /// Fallible [`OverlapCache::build_observed`]. On success the cache
    /// and the recorded metrics are bit-identical to the infallible
    /// build; on failure the `error.<stage>` counter is bumped and the
    /// lowest failing task index is reported (stages: `overlap.pack`
    /// serial, `overlap.tile` across the worker pool — the index is a
    /// band-major tile index, see [`culinaria_stats::tile`]).
    pub fn try_build_observed(
        db: &FlavorDb,
        pool: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
    ) -> Result<OverlapCache, StageFailure> {
        OverlapCache::try_build_tiled(FlavorViewRef::Owned(db), pool, n_threads, metrics, None)
    }

    /// [`OverlapCache::try_build_observed`] over a [`FlavorViewRef`] —
    /// the single implementation both representations share. Profiles
    /// resolved from an owned database and from a CFDB2 artifact view
    /// are the same sorted `&[MoleculeId]` slices, so the cache (and
    /// every recorded metric) is bit-identical across representations.
    pub fn try_build_view_observed(
        view: FlavorViewRef<'_>,
        pool: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
    ) -> Result<OverlapCache, StageFailure> {
        OverlapCache::try_build_tiled(view, pool, n_threads, metrics, None)
    }

    /// The tiled build behind every public entry point. `tile_edge`
    /// overrides the L2-derived tile size (tests sweep it to prove the
    /// merge is geometry-independent); `None` uses
    /// [`tile::tile_rows`].
    fn try_build_tiled(
        view: FlavorViewRef<'_>,
        pool: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
        tile_edge: Option<usize>,
    ) -> Result<OverlapCache, StageFailure> {
        let build_span = metrics.span("overlap.build");
        // Held (not read) so the whole build records on scope exit.
        let _build_guard = build_span.enter();
        let n = pool.len();
        metrics.gauge("overlap.pool_size").set(n as i64);
        metrics
            .counter("overlap.cells")
            .add((n * n.saturating_sub(1) / 2) as u64);

        let pack_guard = build_span.child("pack").enter();
        let mut profiles: Vec<&[culinaria_flavordb::MoleculeId]> = Vec::with_capacity(n);
        for (i, &id) in pool.iter().enumerate() {
            fault::probe("overlap.pack", i).map_err(|e| {
                StageFailure::error("overlap.pack", i, e.to_string()).record(metrics)
            })?;
            match view.profile_molecules(id) {
                Ok(p) => profiles.push(p),
                Err(e) => {
                    return Err(StageFailure::error(
                        "overlap.pack",
                        i,
                        format!("ingredient id {} is not usable: {e}", id.index()),
                    )
                    .record(metrics))
                }
            }
        }
        let universe = MoleculeUniverse::build_from_slices(profiles.iter().copied());
        let words = universe.words();
        // One flat row-major matrix: row i at `i*words..(i+1)*words`.
        // Tiles slice strips out of it without chasing Vec pointers.
        let mut bits: Vec<u64> = Vec::with_capacity(n * words);
        for p in &profiles {
            bits.extend_from_slice(universe.pack_ids(p).words());
        }
        pack_guard.stop();

        // Cut the strict upper triangle into L2-sized tiles and fan
        // the tiles out across the pool. Geometry is a function of
        // (n, words) and the machine only — never `n_threads` — so the
        // task list, every fault-probe index, and the merged output
        // are identical across thread counts.
        let sweep_guard = build_span.child("sweep").enter();
        let edge = tile_edge.unwrap_or_else(|| tile::tile_rows(n, words * 8));
        let tiles = tile::TriangleTiles::new(n, edge.max(1));
        metrics.gauge("overlap.tile_rows").set(tiles.tile() as i64);
        let results = pool::try_run_observed(
            n_threads,
            tiles.len(),
            &pool::PoolObs::new(metrics),
            || (),
            |_, t| -> Result<Vec<u32>, fault::InjectedFault> {
                fault::probe("overlap.tile", t)?;
                let (rows, cols) = tiles.tile_bounds(t);
                let mut cells = Vec::with_capacity(tiles.cell_count(t));
                for i in rows {
                    let row_bits = &bits[i * words..][..words];
                    for j in cols.start.max(i + 1)..cols.end {
                        let col_bits = &bits[j * words..][..words];
                        cells.push(kernel::and_popcount(row_bits, col_bits) as u32);
                    }
                }
                Ok(cells)
            },
        )
        .map_err(|f| StageFailure::from_task("overlap.tile", f).record(metrics))?;
        sweep_guard.stop();

        // Scatter each tile's row-major cells back into the packed
        // triangle. Destinations are disjoint and position-derived, so
        // the merged bytes do not depend on tile geometry or order.
        let mut tri = vec![0u32; n * n.saturating_sub(1) / 2];
        let row_base = |i: usize| i * (2 * n - i - 1) / 2;
        for (t, cells) in results.into_iter().enumerate() {
            let (rows, cols) = tiles.tile_bounds(t);
            let mut cur = 0usize;
            for i in rows {
                let j0 = cols.start.max(i + 1);
                if j0 >= cols.end {
                    continue;
                }
                let len = cols.end - j0;
                let at = row_base(i) + (j0 - i - 1);
                tri[at..at + len].copy_from_slice(&cells[cur..cur + len]);
                cur += len;
            }
        }
        let local = pool
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        Ok(OverlapCache {
            pool: pool.to_vec(),
            local,
            tri,
        })
    }

    /// Reassemble a cache from a pool and its packed upper triangle —
    /// e.g. a precomputed overlap section of a CFDB2 artifact. `None`
    /// when `tri` is not exactly `n(n−1)/2` entries for the pool.
    ///
    /// Sections are produced by [`OverlapCache::tri`] on a cache built
    /// by this same code, so a reassembled cache is byte-for-byte the
    /// cache that was serialized.
    pub fn from_parts(pool: &[IngredientId], tri: Vec<u32>) -> Option<OverlapCache> {
        let n = pool.len();
        if tri.len() != n * n.saturating_sub(1) / 2 {
            return None;
        }
        let local = pool
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        Some(OverlapCache {
            pool: pool.to_vec(),
            local,
            tri,
        })
    }

    /// The packed strict upper triangle, row-major (the serialized form
    /// of the cache; see [`OverlapCache::from_parts`]).
    pub fn tri(&self) -> &[u32] {
        &self.tri
    }

    /// Grow the cache to a larger pool, recomputing **only the rows
    /// touched by new ingredients** — the incremental-update half of
    /// streaming ingestion.
    ///
    /// `pool` is the grown cuisine's ingredient pool and must contain
    /// every id already in the cache (a shrunk pool is a caller bug and
    /// an error). Cells whose two ingredients were both already cached
    /// are *copied* from the existing triangle; only cells with at
    /// least one new ingredient are computed, as the same
    /// bitset-AND-popcount the cold build uses. Overlap cells are exact
    /// intersection counts, independent of the molecule universe they
    /// are popcounted in, so the result is **bit-identical to a cold
    /// [`OverlapCache::build`] over `pool`** while doing O(new·total)
    /// intersection work instead of O(total²).
    pub fn extend(
        &self,
        db: &FlavorDb,
        pool: &[IngredientId],
    ) -> Result<OverlapCache, StageFailure> {
        self.extend_view(FlavorViewRef::Owned(db), pool)
    }

    /// [`OverlapCache::extend`] over a representation-agnostic flavor
    /// view (owned database or zero-copy artifact).
    pub fn extend_view(
        &self,
        view: FlavorViewRef<'_>,
        pool: &[IngredientId],
    ) -> Result<OverlapCache, StageFailure> {
        let m = pool.len();
        // Each grown-pool position is either an existing local index
        // (copy its cells) or a new ingredient (compute its cells).
        let old: Vec<Option<u32>> = pool.iter().map(|&id| self.local_index(id)).collect();
        let kept = old.iter().flatten().count();
        if kept < self.pool.len() {
            return Err(StageFailure::error(
                "overlap.extend",
                0,
                format!(
                    "grown pool keeps {kept} of {} cached ingredients; \
                     the pool may only grow",
                    self.pool.len()
                ),
            ));
        }
        if kept == m {
            // Nothing new: the grown pool is a permutation of the old
            // one, so every cell is a copy.
            let mut tri = vec![0u32; m * m.saturating_sub(1) / 2];
            let row_base = |i: usize| i * (2 * m - i - 1) / 2;
            for i in 0..m {
                for j in (i + 1)..m {
                    // `kept == m` means every position mapped.
                    if let (Some(a), Some(b)) = (old[i], old[j]) {
                        tri[row_base(i) + (j - i - 1)] = self.overlap(a, b);
                    }
                }
            }
            return OverlapCache::from_parts(pool, tri).ok_or_else(|| {
                StageFailure::error("overlap.extend", 0, "triangle/pool size mismatch")
            });
        }

        // Pack every profile once (new cells pair new ingredients with
        // arbitrary rows). The universe only needs to *cover* the
        // profiles — counts are exact either way — so building it from
        // the grown pool keeps new cells equal to a cold build's.
        let mut profiles: Vec<&[culinaria_flavordb::MoleculeId]> = Vec::with_capacity(m);
        for (i, &id) in pool.iter().enumerate() {
            match view.profile_molecules(id) {
                Ok(p) => profiles.push(p),
                Err(e) => {
                    return Err(StageFailure::error(
                        "overlap.extend",
                        i,
                        format!("ingredient id {} is not usable: {e}", id.index()),
                    ))
                }
            }
        }
        let universe = MoleculeUniverse::build_from_slices(profiles.iter().copied());
        let words = universe.words();
        let mut bits: Vec<u64> = Vec::with_capacity(m * words);
        for p in &profiles {
            bits.extend_from_slice(universe.pack_ids(p).words());
        }

        let mut tri = vec![0u32; m * m.saturating_sub(1) / 2];
        let row_base = |i: usize| i * (2 * m - i - 1) / 2;
        for i in 0..m {
            let row_bits = &bits[i * words..][..words];
            for j in (i + 1)..m {
                let cell = match (old[i], old[j]) {
                    (Some(a), Some(b)) => self.overlap(a, b),
                    _ => kernel::and_popcount(row_bits, &bits[j * words..][..words]) as u32,
                };
                tri[row_base(i) + (j - i - 1)] = cell;
            }
        }
        OverlapCache::from_parts(pool, tri)
            .ok_or_else(|| StageFailure::error("overlap.extend", 0, "triangle/pool size mismatch"))
    }

    /// Build over a cuisine's distinct ingredient set.
    pub fn for_cuisine(db: &FlavorDb, cuisine: &Cuisine<'_>) -> OverlapCache {
        OverlapCache::build(db, &cuisine.ingredient_set())
    }

    /// [`OverlapCache::for_cuisine`] with an explicit worker count
    /// (0 = available parallelism).
    pub fn for_cuisine_with_threads(
        db: &FlavorDb,
        cuisine: &Cuisine<'_>,
        n_threads: usize,
    ) -> OverlapCache {
        OverlapCache::build_with_threads(db, &cuisine.ingredient_set(), n_threads)
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// The pool in local-index order.
    pub fn pool(&self) -> &[IngredientId] {
        &self.pool
    }

    /// Local index of an ingredient, if it is in the pool.
    pub fn local_index(&self, id: IngredientId) -> Option<u32> {
        self.local.get(&id).copied()
    }

    /// Overlap between two *local* indices. O(1).
    ///
    /// # Panics
    /// Panics if an index is out of range; `overlap(i, i)` is defined as
    /// 0 (a recipe never pairs an ingredient with itself).
    #[inline]
    pub fn overlap(&self, i: u32, j: u32) -> u32 {
        if i == j {
            return 0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let (a, b) = (a as usize, b as usize);
        let n = self.pool.len();
        debug_assert!(b < n);
        self.tri[a * (2 * n - a - 1) / 2 + (b - a - 1)]
    }

    /// N_s over a recipe given as local indices. 0 for fewer than two.
    pub fn score_local(&self, locals: &[u32]) -> f64 {
        let n = locals.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                total += u64::from(self.overlap(locals[i], locals[j]));
            }
        }
        (2.0 * total as f64) / (n as f64 * (n as f64 - 1.0))
    }

    /// N_s over a recipe given as ingredient ids (ids outside the pool
    /// are an error in the caller; returns `None` in that case).
    pub fn score_ids(&self, ingredients: &[IngredientId]) -> Option<f64> {
        self.score_ids_with(ingredients, &mut Vec::new())
    }

    /// [`OverlapCache::score_ids`] writing local indices into a
    /// caller-owned scratch buffer, so batch scoring (a cuisine's whole
    /// recipe list, a Monte-Carlo ensemble) allocates nothing per
    /// recipe.
    ///
    /// ```
    /// use culinaria_core::pairing::{recipe_pairing_score, OverlapCache};
    /// use culinaria_flavordb::{Category, FlavorDb};
    ///
    /// let mut db = FlavorDb::new();
    /// let m: Vec<_> = (0..3)
    ///     .map(|k| db.add_molecule(&format!("m{k}"), &[]).unwrap())
    ///     .collect();
    /// let a = db.add_ingredient("a", Category::Herb, vec![m[0], m[1]]).unwrap();
    /// let b = db.add_ingredient("b", Category::Herb, vec![m[1], m[2]]).unwrap();
    ///
    /// let cache = OverlapCache::build(&db, &[a, b]);
    /// let mut scratch = Vec::new();
    /// let cached = cache.score_ids_with(&[a, b], &mut scratch).unwrap();
    /// assert_eq!(cached, recipe_pairing_score(&db, &[a, b]));
    ///
    /// // Ids outside the cache's pool are the caller's bug: None.
    /// let c = db.add_ingredient("c", Category::Spice, vec![m[0]]).unwrap();
    /// assert!(cache.score_ids_with(&[a, c], &mut scratch).is_none());
    /// ```
    pub fn score_ids_with(
        &self,
        ingredients: &[IngredientId],
        scratch: &mut Vec<u32>,
    ) -> Option<f64> {
        scratch.clear();
        for &id in ingredients {
            scratch.push(self.local_index(id)?);
        }
        Some(self.score_local(scratch))
    }

    /// Mean cuisine score via the cache; skips sub-pair recipes.
    /// `None` if any recipe references an ingredient outside the pool.
    pub fn mean_cuisine_score(&self, cuisine: &Cuisine<'_>) -> Option<f64> {
        self.mean_score_over(cuisine.recipes().iter().map(|r| r.ingredients()))
    }

    /// [`OverlapCache::mean_cuisine_score`] over a [`CuisineView`].
    /// Recipe iteration order is recipe-id order in both
    /// representations, so the fold (and its rounding) is identical.
    pub fn mean_cuisine_score_view(&self, cuisine: &CuisineView<'_>) -> Option<f64> {
        self.mean_score_over(cuisine.recipe_ingredient_lists())
    }

    /// The shared fold behind both mean-score entry points.
    fn mean_score_over<'s>(
        &self,
        recipes: impl Iterator<Item = &'s [IngredientId]>,
    ) -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0usize;
        let mut scratch = Vec::new();
        for ings in recipes {
            if ings.len() >= 2 {
                total += self.score_ids_with(ings, &mut scratch)?;
                n += 1;
            }
        }
        Some(if n == 0 { 0.0 } else { total / n as f64 })
    }
}

/// Reusable scratch for k-way bitset intersections along a
/// lexicographic combination walk — the kernel under the n-tuple
/// analyses ([`crate::ntuple`]).
///
/// The walk maintains a *prefix-mask stack*: mask `d` is the AND of the
/// profiles chosen at combination positions `0..=d`, so extending the
/// current prefix by one member costs a single word-AND + popcount over
/// the packed blocks instead of a k-way set intersection from scratch.
/// An empty prefix mask prunes the entire subtree of deeper
/// combinations (every superset's intersection is also empty), which
/// skips most of C(n, k) in practice — k-wise common molecules are
/// combinatorially rare.
///
/// One scratch is reused across every recipe a worker scores; the mask
/// stack is resized (never reallocated at steady state) per call.
#[derive(Debug, Clone, Default)]
pub struct IntersectScratch {
    /// Prefix masks, depth-major: depth `d` occupies
    /// `d*words..(d+1)*words`. Leaf depths are popcounted without being
    /// stored, so only `k − 1` levels are ever materialized.
    masks: Vec<u64>,
}

impl IntersectScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> IntersectScratch {
        IntersectScratch::default()
    }

    /// `Σ_{S ⊆ members, |S| = k} |∩_{i∈S} F_i|` over profiles packed as
    /// `words`-block rows of `bits` (row `r` at `r*words..(r+1)*words`).
    ///
    /// Returns 0 when `k == 0` or `k > members.len()`; `k == 1` is the
    /// popcount sum of the members. Counts are exact integers, so the
    /// result is independent of scratch reuse and thread placement.
    pub fn ktuple_sum(&mut self, bits: &[u64], words: usize, members: &[u32], k: usize) -> u64 {
        let n = members.len();
        if k == 0 || k > n || words == 0 {
            return 0;
        }
        let row = |m: u32| -> &[u64] { &bits[m as usize * words..][..words] };
        if k == 1 {
            return members.iter().map(|&m| kernel::popcount(row(m))).sum();
        }
        self.masks.clear();
        self.masks.resize((k - 1) * words, 0);
        let walk = PrefixWalk {
            bits,
            words,
            members,
            k,
        };
        let mut total = 0u64;
        walk.descend(0, 0, &mut self.masks, &mut total);
        total
    }
}

/// The fixed inputs of one combination walk (`k ≥ 2`), so the recursion
/// threads only its per-level state.
struct PrefixWalk<'a> {
    bits: &'a [u64],
    words: usize,
    members: &'a [u32],
    k: usize,
}

impl PrefixWalk<'_> {
    /// One level of the lexicographic combination walk: choose position
    /// `depth` from `start..`, AND the chosen row into the prefix-mask
    /// stack, and either popcount (leaf) or recurse — skipping the
    /// subtree whenever the prefix mask goes empty.
    fn descend(&self, depth: usize, start: usize, masks: &mut [u64], total: &mut u64) {
        let (n, words) = (self.members.len(), self.words);
        let leaf = depth + 1 == self.k;
        // Leave room for the remaining k − depth − 1 positions.
        for i in start..=(n - (self.k - depth)) {
            let row = &self.bits[self.members[i] as usize * words..][..words];
            if depth == 0 {
                // k ≥ 2 here, so depth 0 is never a leaf: seed the stack.
                let ones = kernel::copy_popcount(&mut masks[..words], row);
                if ones > 0 {
                    self.descend(1, i + 1, masks, total);
                }
            } else {
                let (shallow, deep) = masks.split_at_mut(depth * words);
                let prev = &shallow[(depth - 1) * words..];
                if leaf {
                    *total += kernel::and_popcount(prev, row);
                } else {
                    let cur = &mut deep[..words];
                    let ones = kernel::and_store_popcount(cur, prev, row);
                    if ones > 0 {
                        self.descend(depth + 1, i + 1, masks, total);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::Category;
    use culinaria_recipedb::{RecipeStore, Region, Source};

    /// db with 4 ingredients; overlaps: (a,b)=2, (a,c)=1, (b,c)=1,
    /// x shares nothing.
    fn fixture() -> (FlavorDb, Vec<IngredientId>) {
        let mut db = FlavorDb::new();
        let m: Vec<_> = (0..8)
            .map(|k| db.add_molecule(&format!("m{k}"), &[]).unwrap())
            .collect();
        let a = db
            .add_ingredient("a", Category::Herb, vec![m[0], m[1], m[2]])
            .unwrap();
        let b = db
            .add_ingredient("b", Category::Herb, vec![m[1], m[2], m[3]])
            .unwrap();
        let c = db
            .add_ingredient("c", Category::Spice, vec![m[2], m[4]])
            .unwrap();
        let x = db
            .add_ingredient("x", Category::Meat, vec![m[6], m[7]])
            .unwrap();
        (db, vec![a, b, c, x])
    }

    #[test]
    fn direct_score_formula() {
        let (db, ids) = fixture();
        let (a, b, c, x) = (ids[0], ids[1], ids[2], ids[3]);
        // Pair (a,b): 2 shared.
        assert_eq!(recipe_pairing_score(&db, &[a, b]), 2.0);
        // Triple (a,b,c): pairs share 2+1+1 = 4, over 3 pairs → 4/3.
        let s = recipe_pairing_score(&db, &[a, b, c]);
        assert!((s - 4.0 / 3.0).abs() < 1e-12);
        // Disjoint pair.
        assert_eq!(recipe_pairing_score(&db, &[a, x]), 0.0);
        // Degenerate sizes.
        assert_eq!(recipe_pairing_score(&db, &[a]), 0.0);
        assert_eq!(recipe_pairing_score(&db, &[]), 0.0);
    }

    #[test]
    fn weighted_score_reduces_to_unweighted() {
        let (db, ids) = fixture();
        for subset in [&ids[0..2], &ids[0..3], &ids[0..4]] {
            let plain = recipe_pairing_score(&db, subset);
            let weighted: Vec<(IngredientId, f64)> = subset.iter().map(|&id| (id, 2.5)).collect();
            let w = weighted_recipe_pairing_score(&db, &weighted);
            assert!((plain - w).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_score_tracks_the_heavy_pair() {
        let (db, ids) = fixture();
        let (a, b, _, x) = (ids[0], ids[1], ids[2], ids[3]);
        // (a,b) share 2; (a,x) and (b,x) share 0. Up-weighting x drags
        // the score down; up-weighting a,b raises it.
        let heavy_ab = weighted_recipe_pairing_score(&db, &[(a, 5.0), (b, 5.0), (x, 0.5)]);
        let heavy_x = weighted_recipe_pairing_score(&db, &[(a, 0.5), (b, 0.5), (x, 5.0)]);
        let plain = recipe_pairing_score(&db, &[a, b, x]);
        assert!(heavy_ab > plain, "{heavy_ab} <= {plain}");
        assert!(heavy_x < plain, "{heavy_x} >= {plain}");
    }

    #[test]
    fn weighted_score_degenerate_inputs() {
        let (db, ids) = fixture();
        assert_eq!(weighted_recipe_pairing_score(&db, &[]), 0.0);
        assert_eq!(weighted_recipe_pairing_score(&db, &[(ids[0], 1.0)]), 0.0);
        // Zero/negative weights drop out entirely.
        assert_eq!(
            weighted_recipe_pairing_score(&db, &[(ids[0], 0.0), (ids[1], -1.0)]),
            0.0
        );
        let only_positive =
            weighted_recipe_pairing_score(&db, &[(ids[0], 1.0), (ids[1], 1.0), (ids[3], 0.0)]);
        assert_eq!(only_positive, recipe_pairing_score(&db, &ids[0..2]));
    }

    #[test]
    fn cache_matches_direct() {
        let (db, ids) = fixture();
        let cache = OverlapCache::build(&db, &ids);
        assert_eq!(cache.len(), 4);
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                let direct = db.shared_molecules(ids[i], ids[j]).unwrap();
                let expect = if i == j { 0 } else { direct };
                assert_eq!(cache.overlap(i as u32, j as u32) as usize, expect);
            }
        }
        // Score parity on several subsets.
        for subset in [&ids[0..2], &ids[0..3], &ids[1..4], &ids[0..4]] {
            let direct = recipe_pairing_score(&db, subset);
            let cached = cache.score_ids(subset).unwrap();
            assert!((direct - cached).abs() < 1e-12);
        }
    }

    #[test]
    fn cache_symmetry_and_self_zero() {
        let (db, ids) = fixture();
        let cache = OverlapCache::build(&db, &ids);
        for i in 0..4u32 {
            assert_eq!(cache.overlap(i, i), 0);
            for j in 0..4u32 {
                assert_eq!(cache.overlap(i, j), cache.overlap(j, i));
            }
        }
    }

    #[test]
    fn build_identical_for_any_thread_count() {
        let (db, ids) = fixture();
        let serial = OverlapCache::build_with_threads(&db, &ids, 1);
        for threads in [0, 2, 8] {
            let parallel = OverlapCache::build_with_threads(&db, &ids, threads);
            assert_eq!(serial.tri, parallel.tri, "{threads} threads");
            assert_eq!(serial.pool, parallel.pool);
        }
    }

    #[test]
    fn tiled_build_matches_for_any_tile_and_thread_count() {
        use culinaria_flavordb::generator::{generate_flavor_db, GeneratorConfig};
        // A pool large enough for real tile geometry (60 ingredients,
        // multi-word profiles).
        let db = generate_flavor_db(&GeneratorConfig::tiny(42));
        let ids: Vec<IngredientId> = db.ingredient_ids().collect();
        assert!(ids.len() >= 32, "generator fixture too small");
        let reference = OverlapCache::build_with_threads(&db, &ids, 1);
        // The cache agrees with the sorted-merge walk cell by cell.
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate().skip(i + 1) {
                assert_eq!(
                    reference.overlap(i as u32, j as u32) as usize,
                    db.shared_molecules(a, b).unwrap(),
                    "cell ({i}, {j})"
                );
            }
        }
        // Every tile geometry × thread count merges to the same bytes.
        for tile_edge in [1usize, 3, 7, 16, 61] {
            for threads in [1usize, 2, 4, 8] {
                let cache = OverlapCache::try_build_tiled(
                    FlavorViewRef::Owned(&db),
                    &ids,
                    threads,
                    &Metrics::disabled(),
                    Some(tile_edge),
                )
                .expect("live pool");
                assert_eq!(
                    cache.tri, reference.tri,
                    "tile={tile_edge} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn observed_build_matches_and_records() {
        let (db, ids) = fixture();
        let plain = OverlapCache::build_with_threads(&db, &ids, 2);
        let metrics = Metrics::enabled();
        let observed = OverlapCache::build_observed(&db, &ids, 2, &metrics);
        assert_eq!(observed.tri, plain.tri);
        assert_eq!(observed.pool, plain.pool);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("overlap.pool_size"), Some(4));
        assert_eq!(snap.counter("overlap.cells"), Some(6));
        assert_eq!(snap.span("overlap.build").unwrap().calls, 1);
        assert_eq!(snap.span("overlap.build.pack").unwrap().calls, 1);
        assert_eq!(snap.span("overlap.build.sweep").unwrap().calls, 1);
        assert_eq!(snap.counter("pool.runs"), Some(1));
    }

    #[test]
    fn try_build_matches_build_and_reports_dead_ids() {
        let (mut db, ids) = fixture();
        let plain = OverlapCache::build(&db, &ids);
        for threads in [1, 2, 8] {
            let fallible =
                OverlapCache::try_build_with_threads(&db, &ids, threads).expect("pool is live");
            assert_eq!(fallible.tri, plain.tri, "{threads} threads");
            assert_eq!(fallible.pool, plain.pool);
        }
        // Kill ingredient "c" (local index 2): the pack stage reports a
        // structured failure at that index for every thread count.
        db.remove_ingredient("c").expect("c exists");
        for threads in [1, 2, 8] {
            let failure = OverlapCache::try_build_with_threads(&db, &ids, threads)
                .expect_err("dead id fails the pack stage");
            assert_eq!(failure.stage, "overlap.pack");
            assert_eq!(failure.index, 2, "{threads} threads");
            assert!(matches!(
                failure.cause,
                crate::error::FailureCause::Error(_)
            ));
        }
        // The observed variant records the error counter.
        let metrics = Metrics::enabled();
        let failure = OverlapCache::try_build_observed(&db, &ids, 2, &metrics)
            .expect_err("dead id fails the pack stage");
        assert_eq!(failure.index, 2);
        assert_eq!(metrics.snapshot().counter("error.overlap.pack"), Some(1));
    }

    #[test]
    fn score_ids_with_reuses_scratch() {
        let (db, ids) = fixture();
        let cache = OverlapCache::build(&db, &ids);
        let mut scratch = Vec::new();
        for subset in [&ids[0..2], &ids[0..3], &ids[0..4]] {
            let fresh = cache.score_ids(subset).unwrap();
            let reused = cache.score_ids_with(subset, &mut scratch).unwrap();
            assert_eq!(fresh.to_bits(), reused.to_bits());
            assert_eq!(scratch.len(), subset.len());
        }
        // Unknown id: None, scratch stays usable afterwards.
        let small = OverlapCache::build(&db, &ids[0..2]);
        assert!(small
            .score_ids_with(&[ids[0], ids[3]], &mut scratch)
            .is_none());
        assert!(small.score_ids_with(&ids[0..2], &mut scratch).is_some());
    }

    #[test]
    fn unknown_ids_give_none() {
        let (db, ids) = fixture();
        let cache = OverlapCache::build(&db, &ids[0..2]);
        assert!(cache.score_ids(&[ids[0], ids[3]]).is_none());
        assert!(cache.local_index(ids[3]).is_none());
    }

    #[test]
    fn cuisine_mean_score() {
        let (db, ids) = fixture();
        let (a, b, c, x) = (ids[0], ids[1], ids[2], ids[3]);
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, vec![a, b])
            .unwrap(); // Ns = 2
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, vec![a, x])
            .unwrap(); // Ns = 0
        let cuisine = store.cuisine(Region::Italy);
        let mean = mean_cuisine_score(&db, &cuisine);
        assert!((mean - 1.0).abs() < 1e-12);

        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        assert!((cache.mean_cuisine_score(&cuisine).unwrap() - 1.0).abs() < 1e-12);
        // c is not in this cuisine's pool.
        assert_eq!(cache.len(), 3);
        assert!(cache.local_index(c).is_none());
    }

    #[test]
    fn intersect_scratch_matches_brute_force() {
        use culinaria_flavordb::{FlavorProfile, MoleculeUniverse};
        // Profiles spread over > 1 word (ids up to 130 → 3 words).
        let profiles: Vec<FlavorProfile> = vec![
            [0u32, 1, 2, 64, 65, 130].into_iter().collect(),
            [0u32, 2, 64, 66, 130].into_iter().collect(),
            [1u32, 2, 64, 65, 130].into_iter().collect(),
            [99u32].into_iter().collect(),
            [0u32, 64, 130].into_iter().collect(),
        ];
        let universe = MoleculeUniverse::build(profiles.iter());
        let words = universe.words();
        let mut bits = Vec::new();
        for p in &profiles {
            bits.extend_from_slice(universe.pack(p).words());
        }
        let members: Vec<u32> = (0..profiles.len() as u32).collect();
        let mut scratch = IntersectScratch::new();
        for k in 0..=profiles.len() + 1 {
            // Brute force over index subsets (k = 0 sums nothing).
            let mut expect = 0u64;
            let n = profiles.len();
            for mask in 1u32..(1 << n) {
                if k == 0 || mask.count_ones() as usize != k {
                    continue;
                }
                let chosen: Vec<&FlavorProfile> = (0..n)
                    .filter(|&i| mask >> i & 1 == 1)
                    .map(|i| &profiles[i])
                    .collect();
                let mut inter = chosen[0].clone();
                for p in &chosen[1..] {
                    inter = inter.intersection(p);
                }
                expect += inter.len() as u64;
            }
            let got = scratch.ktuple_sum(&bits, words, &members, k);
            assert_eq!(got, expect, "k = {k}");
        }
        // Empty universe short-circuits.
        assert_eq!(scratch.ktuple_sum(&[], 0, &members, 2), 0);
    }

    #[test]
    fn empty_cuisine_scores_zero() {
        let (db, _) = fixture();
        let store = RecipeStore::new();
        let cuisine = store.cuisine(Region::Usa);
        assert_eq!(mean_cuisine_score(&db, &cuisine), 0.0);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        assert!(cache.is_empty());
        assert_eq!(cache.mean_cuisine_score(&cuisine), Some(0.0));
    }
}
