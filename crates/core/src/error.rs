//! Structured failure reporting for the analysis engines.
//!
//! Every fallible engine entry point (`try_build`, `try_run_null_model`,
//! `try_analyze_world`, …) reports a [`StageFailure`]: which pipeline
//! stage failed, at which task index, and whether the task returned an
//! error or panicked. Failures inherit the worker pool's determinism
//! contract — the lowest failing task index wins — so the same fault
//! produces a bit-identical `StageFailure` for any thread count.
//!
//! Observability: engines increment an `error.<stage>` counter on the
//! supplied [`Metrics`] handle whenever they return a failure, so
//! operators can alert on failing stages without parsing error text.

use std::fmt;

use culinaria_obs::Metrics;
use culinaria_stats::pool::{FailureKind, TaskFailure};

/// How a stage task failed: a returned error or a caught panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The task reported an error, rendered as text.
    Error(String),
    /// The task panicked; the payload rendered as text.
    Panic(String),
}

/// A failure at one stage of an analysis pipeline.
///
/// `stage` is the same label the fault-injection harness and the span
/// metrics use (`"overlap.tile"`, `"mc.block"`, `"world.block"`, …);
/// `index` is the failing task's index within that stage (lowest wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFailure {
    /// Pipeline stage label.
    pub stage: &'static str,
    /// Index of the lowest failing task within the stage.
    pub index: usize,
    /// Error or panic, with the rendered message.
    pub cause: FailureCause,
}

impl StageFailure {
    /// A failure for a task that reported an error.
    pub fn error(stage: &'static str, index: usize, message: impl Into<String>) -> StageFailure {
        StageFailure {
            stage,
            index,
            cause: FailureCause::Error(message.into()),
        }
    }

    /// Lift a worker-pool [`TaskFailure`] into a stage failure.
    pub fn from_task<E: fmt::Display>(
        stage: &'static str,
        failure: TaskFailure<E>,
    ) -> StageFailure {
        StageFailure {
            stage,
            index: failure.index,
            cause: match failure.kind {
                FailureKind::Failed(e) => FailureCause::Error(e.to_string()),
                FailureKind::Panicked(msg) => FailureCause::Panic(msg),
            },
        }
    }

    /// Bump the `error.<stage>` counter for this failure and return it,
    /// so fallible engines can `map_err(|f| f.record(metrics))` on
    /// their way out.
    pub fn record(self, metrics: &Metrics) -> StageFailure {
        metrics.counter(&format!("error.{}", self.stage)).incr();
        self
    }
}

impl fmt::Display for StageFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cause {
            FailureCause::Error(msg) => {
                write!(f, "stage {}[{}] failed: {msg}", self.stage, self.index)
            }
            FailureCause::Panic(msg) => {
                write!(f, "stage {}[{}] panicked: {msg}", self.stage, self.index)
            }
        }
    }
}

impl std::error::Error for StageFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_causes() {
        let err = StageFailure::error("overlap.tile", 3, "unknown ingredient");
        assert_eq!(
            err.to_string(),
            "stage overlap.tile[3] failed: unknown ingredient"
        );
        let panic = StageFailure {
            stage: "mc.block",
            index: 7,
            cause: FailureCause::Panic("boom".to_string()),
        };
        assert_eq!(panic.to_string(), "stage mc.block[7] panicked: boom");
    }

    #[test]
    fn lifts_task_failures() {
        let failed: TaskFailure<String> = TaskFailure {
            index: 2,
            kind: FailureKind::Failed("bad row".to_string()),
        };
        assert_eq!(
            StageFailure::from_task("overlap.tile", failed),
            StageFailure::error("overlap.tile", 2, "bad row")
        );
        let panicked: TaskFailure<String> = TaskFailure {
            index: 5,
            kind: FailureKind::Panicked("boom".to_string()),
        };
        let lifted = StageFailure::from_task("mc.block", panicked);
        assert_eq!(lifted.cause, FailureCause::Panic("boom".to_string()));
        assert_eq!(lifted.index, 5);
    }

    #[test]
    fn record_bumps_the_stage_counter() {
        let metrics = Metrics::enabled();
        let err = StageFailure::error("mc.block", 0, "x").record(&metrics);
        assert_eq!(err.stage, "mc.block");
        let _ = StageFailure::error("mc.block", 1, "y").record(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("error.mc.block"), Some(2));
    }
}
