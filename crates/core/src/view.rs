//! Unified read-only views over owned databases and zero-copy
//! artifact buffers.
//!
//! The analyses in this crate only *read*: they resolve ingredient ids
//! to flavor profiles and walk a cuisine's recipes. Those reads exist
//! in two representations — the owned [`FlavorDb`] / [`RecipeStore`]
//! pair, and the borrowed CFDB2/CRDB2 artifact views
//! ([`BorrowedFlavorDb`] / [`BorrowedRecipeDb`]) that alias a mapped
//! byte buffer without parsing it. The enums here dispatch between the
//! two so every hot path ([`crate::pairing::OverlapCache`],
//! [`crate::null_models::CuisineSampler`], [`crate::z_analysis`],
//! [`crate::ntuple::KTupleKernel`]) is written once against a view and
//! produces **bit-identical** results from either representation:
//!
//! * profiles come back as the same sorted `&[MoleculeId]` slices the
//!   owned structs hold (the artifact stores them verbatim);
//! * recipe iteration order is recipe-id order in both worlds;
//! * error strings match the owned path character for character.
//!
//! The artifact side additionally exposes the optional precomputed
//! per-region overlap sections ([`FlavorViewRef::overlap_section`]),
//! which lets the analysis skip the O(n²·w) intersection sweep when a
//! migrated artifact already carries the region's triangle.

use std::collections::HashMap;

use culinaria_flavordb::{
    BorrowedFlavorDb, Category, FlavorDb, FlavorDbError, IngredientId, MoleculeId,
};
use culinaria_recipedb::{BorrowedCuisine, BorrowedRecipeDb, Cuisine, RecipeStore, Region};

/// A read-only flavor database: owned or artifact-backed.
///
/// `Copy`, so call sites pass it by value like the `&FlavorDb` it
/// replaces.
#[derive(Debug, Clone, Copy)]
pub enum FlavorViewRef<'a> {
    /// A parsed, owned [`FlavorDb`].
    Owned(&'a FlavorDb),
    /// A zero-copy CFDB2 view borrowing a mapped buffer.
    Artifact(&'a BorrowedFlavorDb<'a>),
}

impl<'a> FlavorViewRef<'a> {
    /// The sorted molecule ids of an ingredient's flavor profile.
    ///
    /// The error for a dead or out-of-range id is the same
    /// [`FlavorDbError::UnknownIngredient`] the owned
    /// [`FlavorDb::ingredient`] raises, so messages built from it are
    /// identical across representations.
    pub fn profile_molecules(self, id: IngredientId) -> Result<&'a [MoleculeId], FlavorDbError> {
        match self {
            FlavorViewRef::Owned(db) => db.ingredient(id).map(|ing| ing.profile.molecules()),
            FlavorViewRef::Artifact(b) => b
                .profile(id)
                .ok_or_else(|| FlavorDbError::UnknownIngredient(id.to_string())),
        }
    }

    /// The canonical name of a live ingredient, `None` for dead ids.
    pub fn ingredient_name(self, id: IngredientId) -> Option<&'a str> {
        match self {
            FlavorViewRef::Owned(db) => db.ingredient(id).ok().map(|ing| ing.name.as_str()),
            FlavorViewRef::Artifact(b) => b.ingredient_name(id),
        }
    }

    /// The category of a live ingredient, `None` for dead ids.
    pub fn category(self, id: IngredientId) -> Option<Category> {
        match self {
            FlavorViewRef::Owned(db) => db.ingredient(id).ok().map(|ing| ing.category),
            FlavorViewRef::Artifact(b) => b.category(id),
        }
    }

    /// A precomputed overlap section `(pool, packed upper triangle)`
    /// stored in the artifact under `label` (normally a region code).
    /// Always `None` for owned databases — only migrated CFDB2 buffers
    /// carry sections.
    pub fn overlap_section(self, label: &str) -> Option<(&'a [IngredientId], &'a [u32])> {
        match self {
            FlavorViewRef::Owned(_) => None,
            FlavorViewRef::Artifact(b) => b.overlap(label),
        }
    }
}

impl<'a> From<&'a FlavorDb> for FlavorViewRef<'a> {
    fn from(db: &'a FlavorDb) -> Self {
        FlavorViewRef::Owned(db)
    }
}

impl<'a> From<&'a BorrowedFlavorDb<'a>> for FlavorViewRef<'a> {
    fn from(b: &'a BorrowedFlavorDb<'a>) -> Self {
        FlavorViewRef::Artifact(b)
    }
}

/// A read-only recipe collection: owned store or artifact-backed.
#[derive(Debug, Clone, Copy)]
pub enum RecipesViewRef<'a> {
    /// A parsed, owned [`RecipeStore`].
    Owned(&'a RecipeStore),
    /// A zero-copy CRDB2 view borrowing a mapped buffer.
    Artifact(&'a BorrowedRecipeDb<'a>),
}

impl<'a> RecipesViewRef<'a> {
    /// Regions with at least one recipe, in [`Region::ALL`] order —
    /// the same listing [`RecipeStore::regions`] produces.
    pub fn regions(self) -> Vec<Region> {
        match self {
            RecipesViewRef::Owned(store) => store.regions(),
            RecipesViewRef::Artifact(b) => b.regions(),
        }
    }

    /// The per-region cuisine view. Recipes appear in recipe-id order
    /// in both representations.
    pub fn cuisine(self, region: Region) -> CuisineView<'a> {
        match self {
            RecipesViewRef::Owned(store) => CuisineView::Owned(store.cuisine(region)),
            RecipesViewRef::Artifact(b) => CuisineView::Artifact(b.cuisine(region)),
        }
    }
}

impl<'a> From<&'a RecipeStore> for RecipesViewRef<'a> {
    fn from(store: &'a RecipeStore) -> Self {
        RecipesViewRef::Owned(store)
    }
}

impl<'a> From<&'a BorrowedRecipeDb<'a>> for RecipesViewRef<'a> {
    fn from(b: &'a BorrowedRecipeDb<'a>) -> Self {
        RecipesViewRef::Artifact(b)
    }
}

/// One region's recipes: an owned [`Cuisine`] or a borrowed CRDB2
/// region shard. Recipe order is recipe-id order in both.
#[derive(Debug, Clone)]
pub enum CuisineView<'a> {
    /// A borrowed view into an owned [`RecipeStore`].
    Owned(Cuisine<'a>),
    /// A zero-copy view into a CRDB2 region shard.
    Artifact(BorrowedCuisine<'a>),
}

impl<'a> CuisineView<'a> {
    /// The region this cuisine belongs to.
    pub fn region(&self) -> Region {
        match self {
            CuisineView::Owned(c) => c.region(),
            CuisineView::Artifact(c) => c.region(),
        }
    }

    /// Number of recipes N_c.
    pub fn n_recipes(&self) -> usize {
        match self {
            CuisineView::Owned(c) => c.n_recipes(),
            CuisineView::Artifact(c) => c.n_recipes(),
        }
    }

    /// The sorted, deduplicated ingredient ids of the `i`-th recipe.
    ///
    /// # Panics
    /// Panics when `i >= n_recipes()` (both arms index a slice).
    pub fn ingredients_of(&self, i: usize) -> &'a [IngredientId] {
        match self {
            CuisineView::Owned(c) => c.recipes()[i].ingredients(),
            CuisineView::Artifact(c) => c.ingredients_of(i),
        }
    }

    /// Every recipe's ingredient list, in recipe order.
    pub fn recipe_ingredient_lists(&self) -> impl Iterator<Item = &'a [IngredientId]> + '_ {
        (0..self.n_recipes()).map(move |i| self.ingredients_of(i))
    }

    /// Distinct ingredients used by the cuisine, sorted by id — the
    /// pool ordering every local-index structure shares.
    pub fn ingredient_set(&self) -> Vec<IngredientId> {
        match self {
            CuisineView::Owned(c) => c.ingredient_set(),
            CuisineView::Artifact(c) => c.ingredient_set(),
        }
    }

    /// Frequency of use: ingredient → number of recipes using it.
    pub fn frequencies(&self) -> HashMap<IngredientId, u64> {
        match self {
            CuisineView::Owned(c) => c.frequencies(),
            CuisineView::Artifact(c) => c.frequencies(),
        }
    }
}

impl<'a> From<Cuisine<'a>> for CuisineView<'a> {
    fn from(c: Cuisine<'a>) -> Self {
        CuisineView::Owned(c)
    }
}

impl<'a> From<BorrowedCuisine<'a>> for CuisineView<'a> {
    fn from(c: BorrowedCuisine<'a>) -> Self {
        CuisineView::Artifact(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::{artifact as flavor_artifact, FlavorArtifactBuilder};
    use culinaria_recipedb::{artifact as recipe_artifact, RecipeArtifactBuilder, Source};

    fn fixture() -> (FlavorDb, RecipeStore) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(8);
        use culinaria_flavordb::MoleculeId as M;
        let a = db
            .add_ingredient("a", Category::Herb, vec![M(0), M(1), M(2)])
            .unwrap();
        let b = db
            .add_ingredient("b", Category::Spice, vec![M(1), M(2), M(3)])
            .unwrap();
        let c = db.add_ingredient("c", Category::Meat, vec![M(5)]).unwrap();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, vec![a, b])
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, vec![a, b, c])
            .unwrap();
        store
            .add_recipe("r3", Region::Japan, Source::Synthetic, vec![b, c])
            .unwrap();
        (db, store)
    }

    #[test]
    fn owned_and_artifact_views_agree() {
        let (db, store) = fixture();
        let fbytes = FlavorArtifactBuilder::new(&db).build().unwrap();
        let fbuf = flavor_artifact::AlignedBytes::from_vec(fbytes);
        let fview = flavor_artifact::open(fbuf.as_slice()).unwrap();
        let rbytes = RecipeArtifactBuilder::new(&store).build().unwrap();
        let rbuf = flavor_artifact::AlignedBytes::from_vec(rbytes);
        let rview = recipe_artifact::open(rbuf.as_slice()).unwrap();

        let owned_f = FlavorViewRef::from(&db);
        let art_f = FlavorViewRef::from(&fview);
        for id in db.ingredient_ids() {
            assert_eq!(
                owned_f.profile_molecules(id).unwrap(),
                art_f.profile_molecules(id).unwrap()
            );
            assert_eq!(owned_f.category(id), art_f.category(id));
        }
        // Dead id: identical error text.
        let dead = IngredientId(99);
        assert_eq!(
            owned_f.profile_molecules(dead).unwrap_err().to_string(),
            art_f.profile_molecules(dead).unwrap_err().to_string()
        );
        assert_eq!(owned_f.overlap_section("ITA"), None);
        assert_eq!(art_f.overlap_section("ITA"), None);

        let owned_r = RecipesViewRef::from(&store);
        let art_r = RecipesViewRef::from(&rview);
        assert_eq!(owned_r.regions(), art_r.regions());
        for region in owned_r.regions() {
            let oc = owned_r.cuisine(region);
            let ac = art_r.cuisine(region);
            assert_eq!(oc.region(), ac.region());
            assert_eq!(oc.n_recipes(), ac.n_recipes());
            assert_eq!(oc.ingredient_set(), ac.ingredient_set());
            assert_eq!(oc.frequencies(), ac.frequencies());
            let o: Vec<_> = oc.recipe_ingredient_lists().collect();
            let a: Vec<_> = ac.recipe_ingredient_lists().collect();
            assert_eq!(o, a);
        }
    }

    #[test]
    fn artifact_overlap_sections_surface_through_the_view() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::Italy);
        let pool = cuisine.ingredient_set();
        let cache = crate::pairing::OverlapCache::build(&db, &pool);
        let mut builder = FlavorArtifactBuilder::new(&db);
        builder.add_overlap("ITA", &pool, cache.tri()).unwrap();
        let bytes = builder.build().unwrap();
        let buf = flavor_artifact::AlignedBytes::from_vec(bytes);
        let view = flavor_artifact::open(buf.as_slice()).unwrap();
        let art = FlavorViewRef::from(&view);
        let (sec_pool, tri) = art.overlap_section("ITA").unwrap();
        assert_eq!(sec_pool, &pool[..]);
        assert_eq!(tri, cache.tri());
        assert_eq!(art.overlap_section("JPN"), None);
    }
}
