//! Z-score analysis of cuisines against the null models (Fig 4) and the
//! full 22-region driver.
//!
//! The world driver does not run region after region: it flattens every
//! `(region, model, block)` triple of the full Fig 4 run into one task
//! queue on the shared worker pool, so a thread finishing the last
//! block of one cuisine immediately starts the next cuisine's work
//! instead of idling at a per-region barrier.
//!
//! Each region's Monte-Carlo streams are salted with its region code
//! (`derive_seed_labeled(cfg.seed, region.code())`) — in both
//! [`analyze_cuisine`] and [`analyze_world`] — so (a) no two regions
//! share a random stream, and (b) analyzing a cuisine alone is
//! bit-identical to its row of the world run.

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_obs::Metrics;
use culinaria_recipedb::{Cuisine, RecipeStore, Region};
use culinaria_stats::rng::derive_seed_labeled;
use culinaria_stats::zscore::z_score_of_mean;
use culinaria_stats::{fault, pool};
use culinaria_stats::{NullEnsemble, RunningStats};
use culinaria_tabular::{Column, Frame};

use crate::error::StageFailure;
use crate::monte_carlo::{
    block_stats, try_run_null_model_observed, McScratch, MonteCarloConfig, BLOCK,
};
use crate::null_models::{CuisineSampler, NullModel};
use crate::pairing::OverlapCache;
use crate::view::{CuisineView, FlavorViewRef, RecipesViewRef};

/// Result of one null-model comparison for one cuisine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelComparison {
    /// The null model compared against.
    pub model: NullModel,
    /// Null ensemble summary (mean, σ, n).
    pub null: NullEnsemble,
    /// Z = (⟨N_s⟩_cuisine − ⟨N_s⟩_null) / (σ_null / √n_null).
    /// `None` for a degenerate null.
    pub z: Option<f64>,
}

/// The full pairing analysis of one cuisine.
#[derive(Debug, Clone)]
pub struct CuisineAnalysis {
    /// The region analyzed.
    pub region: Region,
    /// Recipes with at least two ingredients (the pairing-bearing set).
    pub n_recipes: usize,
    /// Distinct ingredients in the cuisine.
    pub n_ingredients: usize,
    /// Observed mean flavor sharing ⟨N_s⟩.
    pub observed_mean: f64,
    /// One comparison per requested model, in request order.
    pub comparisons: Vec<ModelComparison>,
}

impl CuisineAnalysis {
    /// The comparison against a given model, if it was run.
    pub fn against(&self, model: NullModel) -> Option<&ModelComparison> {
        self.comparisons.iter().find(|c| c.model == model)
    }

    /// Z against the Random model — the headline Fig 4 number.
    pub fn z_random(&self) -> Option<f64> {
        self.against(NullModel::Random).and_then(|c| c.z)
    }

    /// The paper's trichotomy: positive, negative, or indistinguishable
    /// (|Z| < 1.96 at the 5% level).
    pub fn verdict(&self) -> PairingVerdict {
        match self.z_random() {
            Some(z) if z > 1.96 => PairingVerdict::Uniform,
            Some(z) if z < -1.96 => PairingVerdict::Contrasting,
            Some(_) => PairingVerdict::Indistinguishable,
            None => PairingVerdict::Indistinguishable,
        }
    }
}

/// The three possible characterizations of a cuisine (§II.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingVerdict {
    /// Uniform blend: positive food pairing.
    Uniform,
    /// Contrasting blend: negative food pairing.
    Contrasting,
    /// Statistically indistinguishable from random.
    Indistinguishable,
}

impl std::fmt::Display for PairingVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PairingVerdict::Uniform => "uniform",
            PairingVerdict::Contrasting => "contrasting",
            PairingVerdict::Indistinguishable => "random-like",
        })
    }
}

/// Analyze one cuisine against the given models. Returns `None` for
/// cuisines with no pairing-bearing recipes.
///
/// The Monte-Carlo streams are salted with the cuisine's region code,
/// so the result is bit-identical to the same region's row of
/// [`analyze_world`] under the same configuration.
pub fn analyze_cuisine(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Option<CuisineAnalysis> {
    analyze_cuisine_observed(db, cuisine, models, cfg, &Metrics::disabled())
}

/// [`analyze_cuisine`] instrumented through `metrics`: the nested
/// overlap-cache build records the `overlap.*` instruments and each
/// null-model run records the `mc.*` and `pool.*` instruments (see
/// [`crate::monte_carlo::run_null_model_observed`]). Bit-identical to
/// the unobserved analysis.
pub fn analyze_cuisine_observed(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Option<CuisineAnalysis> {
    try_analyze_cuisine_observed(db, cuisine, models, cfg, metrics)
        .unwrap_or_else(|failure| panic!("cuisine analysis failed: {failure}"))
}

/// Fallible [`analyze_cuisine`]: stage failures (dead ingredient ids,
/// degenerate ensembles, panicking Monte-Carlo blocks) become a
/// structured [`StageFailure`] instead of a panic. `Ok(None)` still
/// means "no pairing-bearing recipes" — that is an expected outcome,
/// not a failure.
pub fn try_analyze_cuisine(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Result<Option<CuisineAnalysis>, StageFailure> {
    try_analyze_cuisine_observed(db, cuisine, models, cfg, &Metrics::disabled())
}

/// Fallible [`analyze_cuisine_observed`]. On success the analysis and
/// recorded metrics are bit-identical to the infallible path; on
/// failure the `error.<stage>` counter is bumped and the failure is
/// deterministic for any thread count.
pub fn try_analyze_cuisine_observed(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<CuisineAnalysis>, StageFailure> {
    try_analyze_cuisine_view_observed(
        FlavorViewRef::Owned(db),
        &CuisineView::Owned(cuisine.clone()),
        models,
        cfg,
        metrics,
    )
}

/// [`analyze_cuisine`] over representation-agnostic views: pass
/// `FlavorViewRef::Artifact` / `CuisineView::Artifact` to analyze a
/// zero-copy CFDB2/CRDB2 artifact pair without materializing owned
/// databases. Bit-identical to the owned analysis. Panics on stage
/// failures; see [`try_analyze_cuisine_view_observed`].
pub fn analyze_cuisine_view(
    flavor: FlavorViewRef<'_>,
    cuisine: &CuisineView<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Option<CuisineAnalysis> {
    try_analyze_cuisine_view_observed(flavor, cuisine, models, cfg, &Metrics::disabled())
        .unwrap_or_else(|failure| panic!("cuisine analysis failed: {failure}"))
}

/// Obtain a region's overlap cache: when the flavor view carries a
/// precomputed overlap section labeled with the region code *and* the
/// section's pool is exactly the cuisine's ingredient set, reassemble
/// the cache from the stored triangle (one memcpy; counter
/// `overlap.section_reuse`) instead of re-running the O(n²·w)
/// intersection sweep. Sections are serialized from caches built by
/// this same code, so the reassembled cache is byte-identical to a
/// fresh build.
pub fn region_overlap_cache(
    flavor: FlavorViewRef<'_>,
    region: Region,
    pool: &[IngredientId],
    n_threads: usize,
    metrics: &Metrics,
) -> Result<OverlapCache, StageFailure> {
    if let Some((sec_pool, tri)) = flavor.overlap_section(region.code()) {
        if sec_pool == pool {
            if let Some(cache) = OverlapCache::from_parts(pool, tri.to_vec()) {
                metrics.counter("overlap.section_reuse").add(1);
                return Ok(cache);
            }
        }
    }
    OverlapCache::try_build_view_observed(flavor, pool, n_threads, metrics)
}

/// The view-based cuisine analysis every cuisine entry point funnels
/// through. On success the analysis and recorded metrics are
/// bit-identical whether the views are owned or artifact-backed
/// (artifact overlap sections additionally short-circuit the cache
/// build; the resulting numbers are unchanged).
pub fn try_analyze_cuisine_view_observed(
    flavor: FlavorViewRef<'_>,
    cuisine: &CuisineView<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<CuisineAnalysis>, StageFailure> {
    let Some(sampler) = CuisineSampler::build_view(flavor, cuisine) else {
        return Ok(None);
    };
    let pool = cuisine.ingredient_set();
    let cache = region_overlap_cache(flavor, cuisine.region(), &pool, cfg.n_threads, metrics)?;
    analyze_sampled(cuisine, &sampler, &cache, models, cfg, metrics)
}

/// [`try_analyze_cuisine_view_observed`] with a caller-supplied overlap
/// cache — the entry point for long-lived processes (`culinaria serve`)
/// that build each region's cache once and reuse it across queries.
/// The cache must cover the cuisine's ingredient set (what
/// [`region_overlap_cache`] builds); the analysis is then bit-identical
/// to the cache-building path for the same `cfg`.
pub fn try_analyze_cuisine_with_cache_observed(
    flavor: FlavorViewRef<'_>,
    cuisine: &CuisineView<'_>,
    cache: &OverlapCache,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<CuisineAnalysis>, StageFailure> {
    let Some(sampler) = CuisineSampler::build_view(flavor, cuisine) else {
        return Ok(None);
    };
    analyze_sampled(cuisine, &sampler, cache, models, cfg, metrics)
}

/// Shared tail of the cuisine analysis once a sampler and overlap
/// cache exist: observed mean, per-model null ensembles, Z-scores.
fn analyze_sampled(
    cuisine: &CuisineView<'_>,
    sampler: &CuisineSampler,
    cache: &OverlapCache,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<CuisineAnalysis>, StageFailure> {
    let observed_mean = cache.mean_cuisine_score_view(cuisine).ok_or_else(|| {
        StageFailure::error(
            "cuisine.score",
            0,
            format!(
                "cuisine {} references ingredients outside its own pool",
                cuisine.region().code()
            ),
        )
        .record(metrics)
    })?;

    let region_cfg = MonteCarloConfig {
        seed: derive_seed_labeled(cfg.seed, cuisine.region().code()),
        ..*cfg
    };
    let mut comparisons = Vec::with_capacity(models.len());
    for (mi, &model) in models.iter().enumerate() {
        let null = try_run_null_model_observed(cache, sampler, model, &region_cfg, metrics)?
            .ok_or_else(|| {
                StageFailure::error(
                    "mc.run",
                    mi,
                    format!("degenerate {model} ensemble: fewer than two sampled recipes"),
                )
                .record(metrics)
            })?;
        let z = z_score_of_mean(observed_mean, &null);
        comparisons.push(ModelComparison { model, null, z });
    }

    Ok(Some(CuisineAnalysis {
        region: cuisine.region(),
        n_recipes: sampler.n_templates(),
        n_ingredients: cache.len(),
        observed_mean,
        comparisons,
    }))
}

/// A region's immutable per-run state, shared read-only by every
/// worker of the flattened world queue.
struct PreparedRegion {
    region: Region,
    sampler: CuisineSampler,
    cache: OverlapCache,
    observed_mean: f64,
    n_recipes: usize,
    n_ingredients: usize,
    /// Region-salted Monte-Carlo seed.
    seed: u64,
}

/// Analyze every populated region of a store (the full Fig 4 run).
///
/// All `(region, model, block)` Monte-Carlo work units go through one
/// shared worker pool as a single flattened queue — there is no
/// per-region or per-model barrier, so late stragglers of one cuisine
/// overlap with the next cuisine's blocks. Block statistics come back
/// in canonical task order and are merged per `(region, model)` in
/// block order, keeping every number bit-identical for any thread
/// count and equal to the per-region [`analyze_cuisine`] results.
pub fn analyze_world(
    db: &FlavorDb,
    store: &RecipeStore,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Vec<CuisineAnalysis> {
    analyze_world_observed(db, store, models, cfg, &Metrics::disabled())
}

/// [`analyze_world`] instrumented through `metrics`:
///
/// * spans `world.prepare` (samplers + overlap caches + observed
///   means; the nested cache builds record the `overlap.*`
///   instruments), `world.mc` (the flattened Monte-Carlo queue) and
///   `world.merge` (the canonical per-`(region, model)` fold);
/// * counters `world.regions`, `world.tasks` (flattened `(region,
///   model, block)` triples) and `mc.recipes` / `mc.blocks` totals;
/// * histogram `mc.block_us` — per-block wall time across the whole
///   world run;
/// * the shared `pool.*` instruments.
///
/// Every analysis row is bit-identical to the unobserved driver.
pub fn analyze_world_observed(
    db: &FlavorDb,
    store: &RecipeStore,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Vec<CuisineAnalysis> {
    try_analyze_world_observed(db, store, models, cfg, metrics)
        .unwrap_or_else(|failure| panic!("world analysis failed: {failure}"))
}

/// Fallible [`analyze_world`]: failures in region preparation, the
/// flattened Monte-Carlo queue (stage `world.block`, lowest task index
/// wins), or the canonical merge become a structured [`StageFailure`]
/// instead of aborting the whole run with a panic.
pub fn try_analyze_world(
    db: &FlavorDb,
    store: &RecipeStore,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Result<Vec<CuisineAnalysis>, StageFailure> {
    try_analyze_world_observed(db, store, models, cfg, &Metrics::disabled())
}

/// Fallible [`analyze_world_observed`]. On success the rows and
/// recorded metrics are bit-identical to the infallible driver; on
/// failure the `error.<stage>` counter is bumped and the reported
/// failure is identical for any thread count.
pub fn try_analyze_world_observed(
    db: &FlavorDb,
    store: &RecipeStore,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Vec<CuisineAnalysis>, StageFailure> {
    try_analyze_world_view_observed(
        FlavorViewRef::Owned(db),
        RecipesViewRef::Owned(store),
        models,
        cfg,
        metrics,
    )
}

/// [`analyze_world`] over representation-agnostic views — run the full
/// Fig 4 driver straight off zero-copy CFDB2/CRDB2 buffers.
/// Bit-identical to the owned driver for every thread count. Panics on
/// stage failures; see [`try_analyze_world_view_observed`].
pub fn analyze_world_view(
    flavor: FlavorViewRef<'_>,
    recipes: RecipesViewRef<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Vec<CuisineAnalysis> {
    try_analyze_world_view_observed(flavor, recipes, models, cfg, &Metrics::disabled())
        .unwrap_or_else(|failure| panic!("world analysis failed: {failure}"))
}

/// The view-based world driver every world entry point funnels
/// through. Artifact flavor views with precomputed overlap sections
/// skip the per-region cache builds (see [`OverlapCache::from_parts`]);
/// all emitted numbers are bit-identical either way.
pub fn try_analyze_world_view_observed(
    flavor: FlavorViewRef<'_>,
    recipes: RecipesViewRef<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Vec<CuisineAnalysis>, StageFailure> {
    // Setup pass: samplers, overlap caches (internally parallel), and
    // observed means per populated region.
    let prepare_guard = metrics.span("world.prepare").enter();
    let mut prepared: Vec<PreparedRegion> = Vec::new();
    for region in recipes.regions() {
        let cuisine = recipes.cuisine(region);
        let Some(sampler) = CuisineSampler::build_view(flavor, &cuisine) else {
            continue;
        };
        let pool = cuisine.ingredient_set();
        let cache = region_overlap_cache(flavor, region, &pool, cfg.n_threads, metrics)?;
        let observed_mean = cache.mean_cuisine_score_view(&cuisine).ok_or_else(|| {
            StageFailure::error(
                "world.prepare",
                prepared.len(),
                format!(
                    "cuisine {} references ingredients outside its own pool",
                    region.code()
                ),
            )
            .record(metrics)
        })?;
        prepared.push(PreparedRegion {
            region,
            n_recipes: sampler.n_templates(),
            n_ingredients: pool.len(),
            sampler,
            cache,
            observed_mean,
            seed: derive_seed_labeled(cfg.seed, region.code()),
        });
    }
    prepare_guard.stop();

    // Flattened Monte-Carlo queue: task index ↔ (region, model, block)
    // by uniform stride, so no task list needs materializing.
    let n_models = models.len();
    let n_blocks = cfg.n_recipes.div_ceil(BLOCK);
    let per_region = n_models * n_blocks;
    let n_tasks = prepared.len() * per_region;
    metrics.counter("world.regions").add(prepared.len() as u64);
    metrics.counter("world.tasks").add(n_tasks as u64);
    metrics
        .counter("mc.recipes")
        .add((prepared.len() * n_models * cfg.n_recipes) as u64);
    metrics.counter("mc.blocks").add(n_tasks as u64);
    let block_hist = metrics.histogram("mc.block_us");
    let mc_guard = metrics.span("world.mc").enter();
    let block_results = pool::try_run_observed(
        cfg.n_threads,
        n_tasks,
        &pool::PoolObs::new(metrics),
        McScratch::new,
        |scratch, t| -> Result<RunningStats, fault::InjectedFault> {
            fault::probe("world.block", t)?;
            let timer = block_hist.start();
            let p = &prepared[t / per_region];
            let rem = t % per_region;
            let model = models[rem / n_blocks];
            let block = rem % n_blocks;
            let stats = block_stats(
                &p.cache,
                &p.sampler,
                model,
                p.seed,
                block,
                cfg.n_recipes,
                scratch,
            );
            timer.stop();
            Ok(stats)
        },
    )
    .map_err(|f| StageFailure::from_task("world.block", f).record(metrics))?;
    mc_guard.stop();

    // Canonical merge: per (region, model), fold blocks in block order.
    let merge_span = metrics.span("world.merge");
    let _merge_guard = merge_span.enter();
    let mut analyses = Vec::with_capacity(prepared.len());
    for (pi, p) in prepared.iter().enumerate() {
        let mut comparisons = Vec::with_capacity(n_models);
        for (mi, &model) in models.iter().enumerate() {
            let mut total = RunningStats::new();
            let base = pi * per_region + mi * n_blocks;
            for stats in &block_results[base..base + n_blocks] {
                total.merge(stats);
            }
            let null = NullEnsemble::from_running(&total).ok_or_else(|| {
                StageFailure::error(
                    "world.merge",
                    pi * n_models + mi,
                    format!(
                        "degenerate {model} ensemble for {}: fewer than two sampled recipes",
                        p.region.code()
                    ),
                )
                .record(metrics)
            })?;
            let z = z_score_of_mean(p.observed_mean, &null);
            comparisons.push(ModelComparison { model, null, z });
        }
        analyses.push(CuisineAnalysis {
            region: p.region,
            n_recipes: p.n_recipes,
            n_ingredients: p.n_ingredients,
            observed_mean: p.observed_mean,
            comparisons,
        });
    }
    Ok(analyses)
}

/// Render analyses as a frame: one row per region, `z_<model>` column
/// per model, plus observed/null means.
pub fn analyses_to_frame(analyses: &[CuisineAnalysis]) -> Frame {
    let mut f = Frame::new();
    let regions: Vec<&str> = analyses.iter().map(|a| a.region.code()).collect();
    f.add_column("region", Column::from_strs(&regions))
        .expect("fresh frame");
    f.add_column(
        "n_recipes",
        Column::from_i64s(
            &analyses
                .iter()
                .map(|a| a.n_recipes as i64)
                .collect::<Vec<_>>(),
        ),
    )
    .expect("fresh column");
    f.add_column(
        "observed_ns",
        Column::from_f64s(&analyses.iter().map(|a| a.observed_mean).collect::<Vec<_>>()),
    )
    .expect("fresh column");
    if let Some(first) = analyses.first() {
        for (k, c) in first.comparisons.iter().enumerate() {
            let zs: Vec<Option<f64>> = analyses
                .iter()
                .map(|a| a.comparisons.get(k).and_then(|c| c.z))
                .collect();
            let means: Vec<Option<f64>> = analyses
                .iter()
                .map(|a| a.comparisons.get(k).map(|c| c.null.mean))
                .collect();
            f.add_column(&format!("z_{}", c.model.short()), Column::Float(zs))
                .expect("fresh column");
            f.add_column(
                &format!("null_mean_{}", c.model.short()),
                Column::Float(means),
            )
            .expect("fresh column");
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    fn quick_cfg() -> MonteCarloConfig {
        MonteCarloConfig {
            n_recipes: 4000,
            seed: 7,
            n_threads: 2,
        }
    }

    #[test]
    fn positive_and_negative_regions_get_correct_sign() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = quick_cfg();
        let models = [NullModel::Random];

        let ita = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Italy),
            &models,
            &cfg,
        )
        .unwrap();
        let jpn = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Japan),
            &models,
            &cfg,
        )
        .unwrap();
        let z_ita = ita.z_random().unwrap();
        let z_jpn = jpn.z_random().unwrap();
        assert!(z_ita > 0.0, "ITA z {z_ita} should be positive");
        assert!(z_jpn < 0.0, "JPN z {z_jpn} should be negative");
        assert_eq!(ita.verdict(), PairingVerdict::Uniform);
        assert_eq!(jpn.verdict(), PairingVerdict::Contrasting);
    }

    #[test]
    fn frequency_model_shrinks_z_magnitude() {
        // The paper's key finding: preserving ingredient frequency
        // largely reproduces the pairing, so |Z| against the Frequency
        // model is much smaller than against Random.
        let world = generate_world(&WorldConfig::tiny());
        let cfg = quick_cfg();
        let models = [NullModel::Random, NullModel::Frequency];
        let ita = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Italy),
            &models,
            &cfg,
        )
        .unwrap();
        let z_rand = ita.against(NullModel::Random).unwrap().z.unwrap().abs();
        let z_freq = ita.against(NullModel::Frequency).unwrap().z.unwrap().abs();
        assert!(
            z_freq < z_rand,
            "frequency model should explain pairing: |z_freq| {z_freq} vs |z_rand| {z_rand}"
        );
    }

    #[test]
    fn analyze_world_covers_all_regions() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = MonteCarloConfig {
            n_recipes: 500,
            seed: 7,
            n_threads: 2,
        };
        let analyses = analyze_world(&world.flavor, &world.recipes, &[NullModel::Random], &cfg);
        assert_eq!(analyses.len(), 22);
        for a in &analyses {
            assert!(a.observed_mean >= 0.0);
            assert!(a.n_recipes > 0);
        }
    }

    #[test]
    fn analyze_world_bit_identical_across_thread_counts() {
        let world = generate_world(&WorldConfig::tiny());
        let models = [NullModel::Random, NullModel::Frequency];
        let base = MonteCarloConfig {
            n_recipes: 4096, // 2 blocks per (region, model)
            seed: 99,
            n_threads: 1,
        };
        let reference = analyze_world(&world.flavor, &world.recipes, &models, &base);
        for threads in [2, 8] {
            let cfg = MonteCarloConfig {
                n_threads: threads,
                ..base
            };
            let run = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
            assert_eq!(run.len(), reference.len());
            for (a, b) in reference.iter().zip(&run) {
                assert_eq!(a.region, b.region, "{threads} threads");
                assert_eq!(a.observed_mean.to_bits(), b.observed_mean.to_bits());
                for (ca, cb) in a.comparisons.iter().zip(&b.comparisons) {
                    assert_eq!(ca.model, cb.model);
                    assert_eq!(
                        ca.null.mean.to_bits(),
                        cb.null.mean.to_bits(),
                        "{threads} threads, {}, {}",
                        a.region.code(),
                        ca.model
                    );
                    assert_eq!(ca.null.std_dev.to_bits(), cb.null.std_dev.to_bits());
                    assert_eq!(
                        ca.z.map(f64::to_bits),
                        cb.z.map(f64::to_bits),
                        "{threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn observed_world_matches_and_records() {
        let world = generate_world(&WorldConfig::tiny());
        let models = [NullModel::Random, NullModel::Frequency];
        let cfg = MonteCarloConfig {
            n_recipes: 3000, // 2 blocks per (region, model), last partial
            seed: 13,
            n_threads: 2,
        };
        let plain = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
        let metrics = Metrics::enabled();
        let observed =
            analyze_world_observed(&world.flavor, &world.recipes, &models, &cfg, &metrics);
        assert_eq!(plain.len(), observed.len());
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(a.region, b.region);
            assert_eq!(a.observed_mean.to_bits(), b.observed_mean.to_bits());
            for (ca, cb) in a.comparisons.iter().zip(&b.comparisons) {
                assert_eq!(ca.null.mean.to_bits(), cb.null.mean.to_bits());
                assert_eq!(ca.z.map(f64::to_bits), cb.z.map(f64::to_bits));
            }
        }
        let snap = metrics.snapshot();
        let n_regions = plain.len() as u64;
        let n_tasks = n_regions * 2 * 2; // 2 models × 2 blocks
        assert_eq!(snap.counter("world.regions"), Some(n_regions));
        assert_eq!(snap.counter("world.tasks"), Some(n_tasks));
        assert_eq!(snap.counter("mc.blocks"), Some(n_tasks));
        assert_eq!(snap.histogram("mc.block_us").unwrap().count, n_tasks);
        assert_eq!(snap.span("world.prepare").unwrap().calls, 1);
        assert_eq!(snap.span("world.mc").unwrap().calls, 1);
        assert_eq!(snap.span("world.merge").unwrap().calls, 1);
        // One overlap-cache build per region, plus the MC fan-out.
        assert_eq!(snap.span("overlap.build").unwrap().calls, n_regions);
        assert_eq!(snap.counter("pool.runs"), Some(n_regions + 1));
    }

    #[test]
    fn world_rows_match_single_cuisine_runs() {
        // Region-salted streams make the flattened world pipeline
        // reproduce exactly what analyzing each cuisine alone gives.
        let world = generate_world(&WorldConfig::tiny());
        let models = [NullModel::Random];
        let cfg = MonteCarloConfig {
            n_recipes: 3000, // exercises a partial final block too
            seed: 5,
            n_threads: 2,
        };
        let all = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
        for row in all.iter().take(4) {
            let solo = analyze_cuisine(
                &world.flavor,
                &world.recipes.cuisine(row.region),
                &models,
                &cfg,
            )
            .unwrap();
            assert_eq!(row.observed_mean.to_bits(), solo.observed_mean.to_bits());
            let (a, b) = (&row.comparisons[0], &solo.comparisons[0]);
            assert_eq!(
                a.null.mean.to_bits(),
                b.null.mean.to_bits(),
                "{}",
                row.region.code()
            );
            assert_eq!(a.null.n, b.null.n);
            assert_eq!(a.z.map(f64::to_bits), b.z.map(f64::to_bits));
        }
    }

    #[test]
    fn try_analyze_matches_infallible_paths_bit_for_bit() {
        let world = generate_world(&WorldConfig::tiny());
        let models = [NullModel::Random, NullModel::Frequency];
        let cfg = MonteCarloConfig {
            n_recipes: 3000,
            seed: 13,
            n_threads: 2,
        };
        let plain = analyze_world(&world.flavor, &world.recipes, &models, &cfg);
        let fallible =
            try_analyze_world(&world.flavor, &world.recipes, &models, &cfg).expect("no faults");
        assert_eq!(plain.len(), fallible.len());
        for (a, b) in plain.iter().zip(&fallible) {
            assert_eq!(a.region, b.region);
            assert_eq!(a.observed_mean.to_bits(), b.observed_mean.to_bits());
            for (ca, cb) in a.comparisons.iter().zip(&b.comparisons) {
                assert_eq!(ca.null.mean.to_bits(), cb.null.mean.to_bits());
                assert_eq!(ca.z.map(f64::to_bits), cb.z.map(f64::to_bits));
            }
        }
        let cuisine = world.recipes.cuisine(Region::Italy);
        let solo = analyze_cuisine(&world.flavor, &cuisine, &models, &cfg).unwrap();
        let solo_try = try_analyze_cuisine(&world.flavor, &cuisine, &models, &cfg)
            .expect("no faults")
            .expect("pairing-bearing cuisine");
        assert_eq!(
            solo.observed_mean.to_bits(),
            solo_try.observed_mean.to_bits()
        );
        for (ca, cb) in solo.comparisons.iter().zip(&solo_try.comparisons) {
            assert_eq!(ca.null.mean.to_bits(), cb.null.mean.to_bits());
            assert_eq!(ca.z.map(f64::to_bits), cb.z.map(f64::to_bits));
        }
    }

    #[test]
    fn regions_use_distinct_streams() {
        // Two regions must not share null-model randomness: their
        // ensemble means should differ even with everything else equal.
        let world = generate_world(&WorldConfig::tiny());
        let cfg = MonteCarloConfig {
            n_recipes: 2000,
            seed: 11,
            n_threads: 2,
        };
        let all = analyze_world(&world.flavor, &world.recipes, &[NullModel::Random], &cfg);
        let mut means: Vec<u64> = all
            .iter()
            .map(|a| a.comparisons[0].null.mean.to_bits())
            .collect();
        means.sort_unstable();
        means.dedup();
        assert_eq!(
            means.len(),
            all.len(),
            "null ensembles collide across regions"
        );
    }

    #[test]
    fn frame_rendering() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = MonteCarloConfig {
            n_recipes: 300,
            seed: 7,
            n_threads: 1,
        };
        let analyses = analyze_world(
            &world.flavor,
            &world.recipes,
            &[NullModel::Random, NullModel::Frequency],
            &cfg,
        );
        let frame = analyses_to_frame(&analyses);
        assert_eq!(frame.n_rows(), 22);
        for col in ["region", "n_recipes", "observed_ns", "z_random", "z_freq"] {
            assert!(frame.has_column(col), "{col} missing");
        }
    }

    #[test]
    fn empty_frame_for_no_analyses() {
        let f = analyses_to_frame(&[]);
        assert_eq!(f.n_rows(), 0);
    }
}
