//! Z-score analysis of cuisines against the null models (Fig 4) and the
//! full 22-region driver.

use culinaria_flavordb::FlavorDb;
use culinaria_recipedb::{Cuisine, RecipeStore, Region};
use culinaria_stats::zscore::z_score_of_mean;
use culinaria_stats::NullEnsemble;
use culinaria_tabular::{Column, Frame};

use crate::monte_carlo::{run_null_model, MonteCarloConfig};
use crate::null_models::{CuisineSampler, NullModel};
use crate::pairing::OverlapCache;

/// Result of one null-model comparison for one cuisine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelComparison {
    /// The null model compared against.
    pub model: NullModel,
    /// Null ensemble summary (mean, σ, n).
    pub null: NullEnsemble,
    /// Z = (⟨N_s⟩_cuisine − ⟨N_s⟩_null) / (σ_null / √n_null).
    /// `None` for a degenerate null.
    pub z: Option<f64>,
}

/// The full pairing analysis of one cuisine.
#[derive(Debug, Clone)]
pub struct CuisineAnalysis {
    /// The region analyzed.
    pub region: Region,
    /// Recipes with at least two ingredients (the pairing-bearing set).
    pub n_recipes: usize,
    /// Distinct ingredients in the cuisine.
    pub n_ingredients: usize,
    /// Observed mean flavor sharing ⟨N_s⟩.
    pub observed_mean: f64,
    /// One comparison per requested model, in request order.
    pub comparisons: Vec<ModelComparison>,
}

impl CuisineAnalysis {
    /// The comparison against a given model, if it was run.
    pub fn against(&self, model: NullModel) -> Option<&ModelComparison> {
        self.comparisons.iter().find(|c| c.model == model)
    }

    /// Z against the Random model — the headline Fig 4 number.
    pub fn z_random(&self) -> Option<f64> {
        self.against(NullModel::Random).and_then(|c| c.z)
    }

    /// The paper's trichotomy: positive, negative, or indistinguishable
    /// (|Z| < 1.96 at the 5% level).
    pub fn verdict(&self) -> PairingVerdict {
        match self.z_random() {
            Some(z) if z > 1.96 => PairingVerdict::Uniform,
            Some(z) if z < -1.96 => PairingVerdict::Contrasting,
            Some(_) => PairingVerdict::Indistinguishable,
            None => PairingVerdict::Indistinguishable,
        }
    }
}

/// The three possible characterizations of a cuisine (§II.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingVerdict {
    /// Uniform blend: positive food pairing.
    Uniform,
    /// Contrasting blend: negative food pairing.
    Contrasting,
    /// Statistically indistinguishable from random.
    Indistinguishable,
}

impl std::fmt::Display for PairingVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PairingVerdict::Uniform => "uniform",
            PairingVerdict::Contrasting => "contrasting",
            PairingVerdict::Indistinguishable => "random-like",
        })
    }
}

/// Analyze one cuisine against the given models. Returns `None` for
/// cuisines with no pairing-bearing recipes.
pub fn analyze_cuisine(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Option<CuisineAnalysis> {
    let sampler = CuisineSampler::build(db, cuisine)?;
    let cache = OverlapCache::for_cuisine(db, cuisine);
    let observed_mean = cache
        .mean_cuisine_score(cuisine)
        .expect("cache pool covers the cuisine's own recipes");

    let comparisons: Vec<ModelComparison> = models
        .iter()
        .map(|&model| {
            let null = run_null_model(&cache, &sampler, model, cfg)
                .expect("n_recipes >= 2 yields an ensemble");
            let z = z_score_of_mean(observed_mean, &null);
            ModelComparison { model, null, z }
        })
        .collect();

    Some(CuisineAnalysis {
        region: cuisine.region(),
        n_recipes: sampler.n_templates(),
        n_ingredients: cuisine.ingredient_set().len(),
        observed_mean,
        comparisons,
    })
}

/// Analyze every populated region of a store (the full Fig 4 run).
pub fn analyze_world(
    db: &FlavorDb,
    store: &RecipeStore,
    models: &[NullModel],
    cfg: &MonteCarloConfig,
) -> Vec<CuisineAnalysis> {
    store
        .regions()
        .into_iter()
        .filter_map(|region| {
            let cuisine = store.cuisine(region);
            analyze_cuisine(db, &cuisine, models, cfg)
        })
        .collect()
}

/// Render analyses as a frame: one row per region, `z_<model>` column
/// per model, plus observed/null means.
pub fn analyses_to_frame(analyses: &[CuisineAnalysis]) -> Frame {
    let mut f = Frame::new();
    let regions: Vec<&str> = analyses.iter().map(|a| a.region.code()).collect();
    f.add_column("region", Column::from_strs(&regions))
        .expect("fresh frame");
    f.add_column(
        "n_recipes",
        Column::from_i64s(
            &analyses
                .iter()
                .map(|a| a.n_recipes as i64)
                .collect::<Vec<_>>(),
        ),
    )
    .expect("fresh column");
    f.add_column(
        "observed_ns",
        Column::from_f64s(&analyses.iter().map(|a| a.observed_mean).collect::<Vec<_>>()),
    )
    .expect("fresh column");
    if let Some(first) = analyses.first() {
        for (k, c) in first.comparisons.iter().enumerate() {
            let zs: Vec<Option<f64>> = analyses
                .iter()
                .map(|a| a.comparisons.get(k).and_then(|c| c.z))
                .collect();
            let means: Vec<Option<f64>> = analyses
                .iter()
                .map(|a| a.comparisons.get(k).map(|c| c.null.mean))
                .collect();
            f.add_column(&format!("z_{}", c.model.short()), Column::Float(zs))
                .expect("fresh column");
            f.add_column(
                &format!("null_mean_{}", c.model.short()),
                Column::Float(means),
            )
            .expect("fresh column");
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    fn quick_cfg() -> MonteCarloConfig {
        MonteCarloConfig {
            n_recipes: 4000,
            seed: 7,
            n_threads: 2,
        }
    }

    #[test]
    fn positive_and_negative_regions_get_correct_sign() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = quick_cfg();
        let models = [NullModel::Random];

        let ita = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Italy),
            &models,
            &cfg,
        )
        .unwrap();
        let jpn = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Japan),
            &models,
            &cfg,
        )
        .unwrap();
        let z_ita = ita.z_random().unwrap();
        let z_jpn = jpn.z_random().unwrap();
        assert!(z_ita > 0.0, "ITA z {z_ita} should be positive");
        assert!(z_jpn < 0.0, "JPN z {z_jpn} should be negative");
        assert_eq!(ita.verdict(), PairingVerdict::Uniform);
        assert_eq!(jpn.verdict(), PairingVerdict::Contrasting);
    }

    #[test]
    fn frequency_model_shrinks_z_magnitude() {
        // The paper's key finding: preserving ingredient frequency
        // largely reproduces the pairing, so |Z| against the Frequency
        // model is much smaller than against Random.
        let world = generate_world(&WorldConfig::tiny());
        let cfg = quick_cfg();
        let models = [NullModel::Random, NullModel::Frequency];
        let ita = analyze_cuisine(
            &world.flavor,
            &world.recipes.cuisine(Region::Italy),
            &models,
            &cfg,
        )
        .unwrap();
        let z_rand = ita.against(NullModel::Random).unwrap().z.unwrap().abs();
        let z_freq = ita.against(NullModel::Frequency).unwrap().z.unwrap().abs();
        assert!(
            z_freq < z_rand,
            "frequency model should explain pairing: |z_freq| {z_freq} vs |z_rand| {z_rand}"
        );
    }

    #[test]
    fn analyze_world_covers_all_regions() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = MonteCarloConfig {
            n_recipes: 500,
            seed: 7,
            n_threads: 2,
        };
        let analyses = analyze_world(&world.flavor, &world.recipes, &[NullModel::Random], &cfg);
        assert_eq!(analyses.len(), 22);
        for a in &analyses {
            assert!(a.observed_mean >= 0.0);
            assert!(a.n_recipes > 0);
        }
    }

    #[test]
    fn frame_rendering() {
        let world = generate_world(&WorldConfig::tiny());
        let cfg = MonteCarloConfig {
            n_recipes: 300,
            seed: 7,
            n_threads: 1,
        };
        let analyses = analyze_world(
            &world.flavor,
            &world.recipes,
            &[NullModel::Random, NullModel::Frequency],
            &cfg,
        );
        let frame = analyses_to_frame(&analyses);
        assert_eq!(frame.n_rows(), 22);
        for col in ["region", "n_recipes", "observed_ns", "z_random", "z_freq"] {
            assert!(frame.has_column(col), "{col} missing");
        }
    }

    #[test]
    fn empty_frame_for_no_analyses() {
        let f = analyses_to_frame(&[]);
        assert_eq!(f.n_rows(), 0);
    }
}
