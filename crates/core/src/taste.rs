//! Taste enumeration — the paper's §V question *"Could it be possible
//! to enumerate the taste of a recipe?"*.
//!
//! Every flavor molecule carries perceptual descriptors ("buttery",
//! "citrus", "umami", …). A recipe's *taste profile* is the descriptor
//! distribution over its pooled flavor molecules; cuisines aggregate
//! recipe profiles. Descriptor coverage follows the underlying
//! database — the curated fixture is densely annotated, synthetic
//! worlds are not — so the API reports coverage alongside the profile.

use std::collections::HashMap;

use culinaria_flavordb::{FlavorDb, FlavorProfile, IngredientId};
use culinaria_recipedb::Cuisine;

/// A descriptor distribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TasteProfile {
    /// descriptor → share of all descriptor occurrences (sums to 1 when
    /// any descriptor was found).
    pub shares: HashMap<String, f64>,
    /// Number of molecules considered.
    pub n_molecules: usize,
    /// Number of molecules that carried at least one descriptor.
    pub n_annotated: usize,
}

impl TasteProfile {
    /// Fraction of molecules with descriptors (annotation coverage).
    pub fn coverage(&self) -> f64 {
        if self.n_molecules == 0 {
            0.0
        } else {
            self.n_annotated as f64 / self.n_molecules as f64
        }
    }

    /// The `k` dominant descriptors, descending by share (ties by
    /// name).
    pub fn dominant(&self, k: usize) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> =
            self.shares.iter().map(|(d, &s)| (d.clone(), s)).collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// Cosine similarity to another taste profile (0 when either is
    /// unannotated).
    pub fn similarity(&self, other: &TasteProfile) -> f64 {
        let mut dot = 0.0;
        for (d, &a) in &self.shares {
            if let Some(&b) = other.shares.get(d) {
                dot += a * b;
            }
        }
        let na: f64 = self.shares.values().map(|s| s * s).sum::<f64>().sqrt();
        let nb: f64 = other.shares.values().map(|s| s * s).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

fn profile_of_molecules(db: &FlavorDb, pooled: &FlavorProfile) -> TasteProfile {
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut n_annotated = 0usize;
    for &m in pooled.molecules() {
        let molecule = db.molecule(m).expect("profiles reference live molecules");
        if !molecule.descriptors.is_empty() {
            n_annotated += 1;
        }
        for d in &molecule.descriptors {
            *counts.entry(d.clone()).or_insert(0) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    let shares = if total == 0 {
        HashMap::new()
    } else {
        counts
            .into_iter()
            .map(|(d, c)| (d, c as f64 / total as f64))
            .collect()
    };
    TasteProfile {
        shares,
        n_molecules: pooled.len(),
        n_annotated,
    }
}

/// Taste profile of a recipe: descriptor distribution over the pooled
/// flavor molecules of its ingredients.
pub fn recipe_taste(db: &FlavorDb, ingredients: &[IngredientId]) -> TasteProfile {
    let profiles: Vec<&FlavorProfile> = ingredients
        .iter()
        .map(|&id| &db.ingredient(id).expect("live ingredient").profile)
        .collect();
    let pooled = FlavorProfile::pooled(profiles);
    profile_of_molecules(db, &pooled)
}

/// Taste profile of a whole cuisine (pooled over all its recipes'
/// ingredients, usage-weighted by construction since repeated use pools
/// repeatedly at the recipe level — we pool distinct molecules per
/// recipe and average the recipe shares).
pub fn cuisine_taste(db: &FlavorDb, cuisine: &Cuisine<'_>) -> TasteProfile {
    let mut acc: HashMap<String, f64> = HashMap::new();
    let mut n_molecules = 0usize;
    let mut n_annotated = 0usize;
    let mut n_recipes = 0usize;
    for r in cuisine.recipes() {
        let tp = recipe_taste(db, r.ingredients());
        n_molecules += tp.n_molecules;
        n_annotated += tp.n_annotated;
        if tp.shares.is_empty() {
            continue;
        }
        n_recipes += 1;
        for (d, s) in tp.shares {
            *acc.entry(d).or_insert(0.0) += s;
        }
    }
    let shares = if n_recipes == 0 {
        HashMap::new()
    } else {
        acc.into_iter()
            .map(|(d, s)| (d, s / n_recipes as f64))
            .collect()
    };
    TasteProfile {
        shares,
        n_molecules,
        n_annotated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::curated::curated_db;
    use culinaria_recipedb::{RecipeStore, Region, Source};

    fn ids(db: &FlavorDb, names: &[&str]) -> Vec<IngredientId> {
        names
            .iter()
            .map(|n| db.ingredient_by_name(n).unwrap_or_else(|| panic!("{n}")))
            .collect()
    }

    #[test]
    fn dairy_recipe_tastes_creamy() {
        let db = curated_db();
        let taste = recipe_taste(&db, &ids(&db, &["milk", "cream", "butter"]));
        assert!(taste.coverage() > 0.8, "coverage {}", taste.coverage());
        let dominant = taste.dominant(3);
        let names: Vec<&str> = dominant.iter().map(|(d, _)| d.as_str()).collect();
        assert!(
            names.contains(&"creamy") || names.contains(&"buttery"),
            "dominant {names:?}"
        );
        // Shares sum to 1.
        let total: f64 = taste.shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn citrus_vs_dairy_profiles_differ() {
        let db = curated_db();
        let citrus = recipe_taste(&db, &ids(&db, &["lemon", "orange", "lemon juice"]));
        let dairy = recipe_taste(&db, &ids(&db, &["milk", "cream", "yogurt"]));
        assert!(citrus.shares.contains_key("citrus"));
        let cross = citrus.similarity(&dairy);
        let self_sim = citrus.similarity(&citrus);
        assert!((self_sim - 1.0).abs() < 1e-9);
        assert!(cross < 0.5, "citrus vs dairy similarity {cross}");
    }

    #[test]
    fn unannotated_molecules_reported_in_coverage() {
        let db = curated_db();
        // "salt" has no molecules at all; "saffron" has sparsely
        // annotated ones.
        let taste = recipe_taste(&db, &ids(&db, &["salt"]));
        assert_eq!(taste.n_molecules, 0);
        assert_eq!(taste.coverage(), 0.0);
        assert!(taste.dominant(3).is_empty());
    }

    #[test]
    fn cuisine_taste_averages_recipes() {
        let db = curated_db();
        let mut store = RecipeStore::new();
        store
            .add_recipe(
                "a",
                Region::France,
                Source::Synthetic,
                ids(&db, &["milk", "cream"]),
            )
            .expect("non-empty");
        store
            .add_recipe(
                "b",
                Region::France,
                Source::Synthetic,
                ids(&db, &["lemon", "orange"]),
            )
            .expect("non-empty");
        let taste = cuisine_taste(&db, &store.cuisine(Region::France));
        assert!(taste.shares.contains_key("creamy"));
        assert!(taste.shares.contains_key("citrus"));
        let total: f64 = taste.shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cuisine_taste_is_empty() {
        let db = curated_db();
        let store = RecipeStore::new();
        let taste = cuisine_taste(&db, &store.cuisine(Region::Japan));
        assert!(taste.shares.is_empty());
        assert_eq!(taste.coverage(), 0.0);
    }
}
