//! The flavor network: ingredients as nodes, edges weighted by shared
//! flavor compounds — the representation introduced by Ahn et al.
//! (2011), which the paper's analyses build on and which existing
//! replications study. Provided as a first-class substrate for
//! downstream network analyses (backbones, hubs, fingerprints).

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_obs::Metrics;
use culinaria_recipedb::Cuisine;
use culinaria_stats::{fault, pool};
use culinaria_tabular::{Column, Frame};

use crate::error::StageFailure;
use crate::pairing::OverlapCache;

/// An undirected weighted edge of the flavor network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Endpoint (the smaller ingredient id).
    pub a: IngredientId,
    /// Endpoint (the larger ingredient id).
    pub b: IngredientId,
    /// Number of shared flavor compounds.
    pub weight: u32,
}

/// The flavor network over an ingredient pool.
#[derive(Debug, Clone)]
pub struct FlavorNetwork {
    nodes: Vec<IngredientId>,
    /// Edges with weight ≥ 1, endpoints as local node indices.
    edges: Vec<(u32, u32, u32)>,
    /// Per-node weighted degree (strength).
    strength: Vec<u64>,
    /// Per-node unweighted degree.
    degree: Vec<u32>,
}

impl FlavorNetwork {
    /// Build the network over an explicit pool (available parallelism).
    pub fn build(db: &FlavorDb, pool: &[IngredientId]) -> FlavorNetwork {
        FlavorNetwork::build_with_threads(db, pool, 0)
    }

    /// [`FlavorNetwork::build`] with an explicit worker count
    /// (0 = available parallelism).
    ///
    /// The upper-triangular edge sweep is fanned row-wise over the
    /// shared worker pool on top of a parallel [`OverlapCache`] build;
    /// per-row edge lists merge **in row order**, so edges come out in
    /// the same row-major order as the serial double loop and the
    /// result is identical for every thread count.
    pub fn build_with_threads(
        db: &FlavorDb,
        ingredients: &[IngredientId],
        n_threads: usize,
    ) -> FlavorNetwork {
        FlavorNetwork::build_observed(db, ingredients, n_threads, &Metrics::disabled())
    }

    /// [`FlavorNetwork::build_with_threads`] instrumented through
    /// `metrics`: span `network.build` with children
    /// `network.build.overlap` (the [`OverlapCache`] build, which also
    /// records the `overlap.*` instruments) and `network.build.edges`
    /// (the edge sweep + serial fold), counters `network.nodes` and
    /// `network.edges`, plus the shared `pool.*` instruments. The
    /// network is bit-identical to the unobserved build.
    pub fn build_observed(
        db: &FlavorDb,
        ingredients: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
    ) -> FlavorNetwork {
        FlavorNetwork::try_build_observed(db, ingredients, n_threads, metrics)
            .unwrap_or_else(|failure| panic!("flavor network build failed: {failure}"))
    }

    /// Fallible [`FlavorNetwork::build`]: dead ingredient ids (via the
    /// nested [`OverlapCache::try_build_observed`]) and failing edge
    /// rows become a structured [`StageFailure`] instead of a panic.
    pub fn try_build(db: &FlavorDb, pool: &[IngredientId]) -> Result<FlavorNetwork, StageFailure> {
        FlavorNetwork::try_build_with_threads(db, pool, 0)
    }

    /// [`FlavorNetwork::try_build`] with an explicit worker count
    /// (0 = available parallelism).
    pub fn try_build_with_threads(
        db: &FlavorDb,
        ingredients: &[IngredientId],
        n_threads: usize,
    ) -> Result<FlavorNetwork, StageFailure> {
        FlavorNetwork::try_build_observed(db, ingredients, n_threads, &Metrics::disabled())
    }

    /// Fallible [`FlavorNetwork::build_observed`]. On success the
    /// network and recorded metrics are bit-identical to the infallible
    /// build; on failure the `error.<stage>` counter is bumped (stages:
    /// the nested overlap build's, or `network.row` for the edge sweep)
    /// and the lowest failing task index is reported.
    pub fn try_build_observed(
        db: &FlavorDb,
        ingredients: &[IngredientId],
        n_threads: usize,
        metrics: &Metrics,
    ) -> Result<FlavorNetwork, StageFailure> {
        let build_span = metrics.span("network.build");
        let build_guard = build_span.enter();
        let overlap_guard = build_span.child("overlap").enter();
        let cache = OverlapCache::try_build_observed(db, ingredients, n_threads, metrics)?;
        overlap_guard.stop();
        let n = cache.len();
        let edges_guard = build_span.child("edges").enter();
        let rows = pool::try_run_observed(
            n_threads,
            n,
            &pool::PoolObs::new(metrics),
            || (),
            |(), i| -> Result<Vec<(u32, u32)>, fault::InjectedFault> {
                fault::probe("network.row", i)?;
                let i = i as u32;
                let mut row: Vec<(u32, u32)> = Vec::new();
                for j in (i + 1)..n as u32 {
                    let w = cache.overlap(i, j);
                    if w > 0 {
                        row.push((j, w));
                    }
                }
                Ok(row)
            },
        )
        .map_err(|f| StageFailure::from_task("network.row", f).record(metrics))?;
        let mut edges = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        let mut strength = vec![0u64; n];
        let mut degree = vec![0u32; n];
        for (i, row) in rows.iter().enumerate() {
            for &(j, w) in row {
                edges.push((i as u32, j, w));
                strength[i] += u64::from(w);
                strength[j as usize] += u64::from(w);
                degree[i] += 1;
                degree[j as usize] += 1;
            }
        }
        edges_guard.stop();
        metrics.counter("network.nodes").add(n as u64);
        metrics.counter("network.edges").add(edges.len() as u64);
        build_guard.stop();
        Ok(FlavorNetwork {
            nodes: ingredients.to_vec(),
            edges,
            strength,
            degree,
        })
    }

    /// Build over a cuisine's ingredient set.
    pub fn for_cuisine(db: &FlavorDb, cuisine: &Cuisine<'_>) -> FlavorNetwork {
        FlavorNetwork::for_cuisine_with_threads(db, cuisine, 0)
    }

    /// [`FlavorNetwork::for_cuisine`] with an explicit worker count.
    pub fn for_cuisine_with_threads(
        db: &FlavorDb,
        cuisine: &Cuisine<'_>,
        n_threads: usize,
    ) -> FlavorNetwork {
        FlavorNetwork::build_with_threads(db, &cuisine.ingredient_set(), n_threads)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of positive-weight edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The nodes in local-index order.
    pub fn nodes(&self) -> &[IngredientId] {
        &self.nodes
    }

    /// Edge density: edges / possible pairs (0 for < 2 nodes).
    pub fn density(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        self.edges.len() as f64 / (n * (n - 1) / 2) as f64
    }

    /// Unweighted degree of a node (by local index).
    pub fn degree(&self, node: usize) -> u32 {
        self.degree[node]
    }

    /// Weighted degree (strength) of a node.
    pub fn strength(&self, node: usize) -> u64 {
        self.strength[node]
    }

    /// The `k` heaviest edges, descending by weight (ties by indices).
    pub fn top_edges(&self, k: usize) -> Vec<Edge> {
        let mut sorted = self.edges.clone();
        sorted.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        sorted
            .into_iter()
            .take(k)
            .map(|(i, j, w)| Edge {
                a: self.nodes[i as usize],
                b: self.nodes[j as usize],
                weight: w,
            })
            .collect()
    }

    /// The network *backbone*: edges with weight ≥ `min_weight`, as a
    /// new network over the same nodes.
    pub fn backbone(&self, min_weight: u32) -> FlavorNetwork {
        let n = self.nodes.len();
        let mut strength = vec![0u64; n];
        let mut degree = vec![0u32; n];
        let edges: Vec<(u32, u32, u32)> = self
            .edges
            .iter()
            .copied()
            .filter(|&(_, _, w)| w >= min_weight)
            .collect();
        for &(i, j, w) in &edges {
            strength[i as usize] += u64::from(w);
            strength[j as usize] += u64::from(w);
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        FlavorNetwork {
            nodes: self.nodes.clone(),
            edges,
            strength,
            degree,
        }
    }

    /// The `k` highest-strength nodes as `(ingredient, strength)` —
    /// the flavor hubs.
    pub fn hubs(&self, k: usize) -> Vec<(IngredientId, u64)> {
        let mut idx: Vec<usize> = (0..self.nodes.len()).collect();
        idx.sort_by(|&a, &b| {
            self.strength[b]
                .cmp(&self.strength[a])
                .then(self.nodes[a].cmp(&self.nodes[b]))
        });
        idx.into_iter()
            .take(k)
            .map(|i| (self.nodes[i], self.strength[i]))
            .collect()
    }

    /// Global (transitivity-style) clustering coefficient of the
    /// unweighted backbone: 3 × triangles / connected triples. 0 when
    /// no triples exist.
    pub fn clustering_coefficient(&self) -> f64 {
        let n = self.nodes.len();
        // Adjacency sets for triangle counting.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(i, j, _) in &self.edges {
            adj[i as usize].push(j);
            adj[j as usize].push(i);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let mut triangles = 0u64;
        for &(i, j, _) in &self.edges {
            // Count common neighbours of i and j (each triangle counted
            // three times, once per edge).
            let (ai, aj) = (&adj[i as usize], &adj[j as usize]);
            let mut x = 0;
            let mut y = 0;
            while x < ai.len() && y < aj.len() {
                match ai[x].cmp(&aj[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        x += 1;
                        y += 1;
                    }
                }
            }
        }
        triangles /= 3;
        let triples: u64 = self
            .degree
            .iter()
            .map(|&d| u64::from(d) * u64::from(d.saturating_sub(1)) / 2)
            .sum();
        if triples == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / triples as f64
        }
    }

    /// Degree distribution as a frame (`degree`, `count`).
    pub fn degree_distribution(&self) -> Frame {
        let mut counts = std::collections::BTreeMap::new();
        for &d in &self.degree {
            *counts.entry(i64::from(d)).or_insert(0i64) += 1;
        }
        let (degrees, tallies): (Vec<i64>, Vec<i64>) = counts.into_iter().unzip();
        Frame::from_columns(vec![
            ("degree", Column::from_i64s(&degrees)),
            ("count", Column::from_i64s(&tallies)),
        ])
        .expect("fresh frame")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::{Category, MoleculeId};

    /// Triangle a–b–c plus isolated d.
    fn fixture() -> (FlavorDb, Vec<IngredientId>) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(10);
        let a = db
            .add_ingredient("a", Category::Herb, vec![MoleculeId(0), MoleculeId(1)])
            .unwrap();
        let b = db
            .add_ingredient("b", Category::Herb, vec![MoleculeId(0), MoleculeId(2)])
            .unwrap();
        let c = db
            .add_ingredient(
                "c",
                Category::Herb,
                vec![MoleculeId(1), MoleculeId(2), MoleculeId(3)],
            )
            .unwrap();
        let d = db
            .add_ingredient("d", Category::Meat, vec![MoleculeId(9)])
            .unwrap();
        (db, vec![a, b, c, d])
    }

    #[test]
    fn builds_expected_topology() {
        let (db, pool) = fixture();
        let net = FlavorNetwork::build(&db, &pool);
        assert_eq!(net.n_nodes(), 4);
        assert_eq!(net.n_edges(), 3); // a–b, a–c, b–c; d isolated
        assert_eq!(net.degree(0), 2);
        assert_eq!(net.degree(3), 0);
        assert_eq!(net.strength(0), 2); // weight 1 + 1
        assert!((net.density() - 0.5).abs() < 1e-12); // 3 of 6 pairs
    }

    #[test]
    fn triangle_clustering_is_one() {
        let (db, pool) = fixture();
        let net = FlavorNetwork::build(&db, &pool);
        assert!((net.clustering_coefficient() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_edges_and_hubs() {
        let (db, pool) = fixture();
        let net = FlavorNetwork::build(&db, &pool);
        let top = net.top_edges(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].weight >= top[1].weight);
        let hubs = net.hubs(1);
        // c shares with both a and b → strength 2, tied with a and b;
        // the smallest id wins ties.
        assert_eq!(hubs[0].1, 2);
    }

    #[test]
    fn backbone_filters_weak_edges() {
        let (db, pool) = fixture();
        let net = FlavorNetwork::build(&db, &pool);
        // All edges have weight 1, so a min-weight-2 backbone is empty.
        let bb = net.backbone(2);
        assert_eq!(bb.n_edges(), 0);
        assert_eq!(bb.n_nodes(), 4);
        assert_eq!(bb.clustering_coefficient(), 0.0);
        // min-weight-1 is identity.
        assert_eq!(net.backbone(1).n_edges(), net.n_edges());
    }

    #[test]
    fn degree_distribution_frame() {
        let (db, pool) = fixture();
        let net = FlavorNetwork::build(&db, &pool);
        let f = net.degree_distribution();
        // Degrees: [2, 2, 2, 0] → two rows: degree 0 × 1, degree 2 × 3.
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.get(0, "count").unwrap(), culinaria_tabular::Value::Int(1));
        assert_eq!(f.get(1, "count").unwrap(), culinaria_tabular::Value::Int(3));
    }

    #[test]
    fn build_identical_for_any_thread_count() {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(40);
        let mut pool = Vec::new();
        for i in 0..60u64 {
            let mols = (0..40u32)
                .filter(|&m| (i * 7 + u64::from(m) * 13) % 5 == 0)
                .map(MoleculeId)
                .collect();
            pool.push(
                db.add_ingredient(&format!("ing{i}"), Category::Herb, mols)
                    .unwrap(),
            );
        }
        let serial = FlavorNetwork::build_with_threads(&db, &pool, 1);
        for threads in [0, 2, 8] {
            let parallel = FlavorNetwork::build_with_threads(&db, &pool, threads);
            assert_eq!(serial.edges, parallel.edges, "{threads} threads");
            assert_eq!(serial.strength, parallel.strength, "{threads} threads");
            assert_eq!(serial.degree, parallel.degree, "{threads} threads");
        }
    }

    #[test]
    fn observed_build_matches_and_records() {
        let (db, pool) = fixture();
        let plain = FlavorNetwork::build_with_threads(&db, &pool, 2);
        let metrics = Metrics::enabled();
        let observed = FlavorNetwork::build_observed(&db, &pool, 2, &metrics);
        assert_eq!(observed.edges, plain.edges);
        assert_eq!(observed.strength, plain.strength);
        assert_eq!(observed.degree, plain.degree);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("network.nodes"), Some(4));
        assert_eq!(snap.counter("network.edges"), Some(3));
        assert_eq!(snap.span("network.build").unwrap().calls, 1);
        assert_eq!(snap.span("network.build.overlap").unwrap().calls, 1);
        assert_eq!(snap.span("network.build.edges").unwrap().calls, 1);
        // The nested overlap build recorded its own instruments, and
        // both fan-outs went through the shared pool.
        assert_eq!(snap.span("overlap.build").unwrap().calls, 1);
        assert_eq!(snap.counter("pool.runs"), Some(2));
    }

    #[test]
    fn try_build_matches_build_and_reports_dead_ids() {
        let (mut db, pool) = fixture();
        let plain = FlavorNetwork::build(&db, &pool);
        for threads in [1, 2, 8] {
            let fallible =
                FlavorNetwork::try_build_with_threads(&db, &pool, threads).expect("pool is live");
            assert_eq!(fallible.edges, plain.edges, "{threads} threads");
            assert_eq!(fallible.strength, plain.strength);
            assert_eq!(fallible.degree, plain.degree);
        }
        db.remove_ingredient("b").expect("b exists");
        let failure = FlavorNetwork::try_build(&db, &pool).expect_err("dead id");
        assert_eq!(failure.stage, "overlap.pack");
        assert_eq!(failure.index, 1);
    }

    #[test]
    fn empty_and_single_node() {
        let (db, pool) = fixture();
        let empty = FlavorNetwork::build(&db, &[]);
        assert_eq!(empty.n_nodes(), 0);
        assert_eq!(empty.density(), 0.0);
        let single = FlavorNetwork::build(&db, &pool[..1]);
        assert_eq!(single.n_edges(), 0);
        assert_eq!(single.density(), 0.0);
    }
}
