//! The four randomized-cuisine null models of §IV.B.
//!
//! Every model preserves the cuisine's exact ingredient set and its
//! recipe-size distribution (sizes are resampled from the observed
//! sizes). They differ in how ingredients fill a recipe:
//!
//! * **Random** — uniform over the cuisine's ingredient set;
//! * **Frequency** — proportional to each ingredient's observed
//!   frequency of use;
//! * **Category** — the category composition of a (randomly chosen)
//!   observed recipe is preserved; each slot is filled uniformly from
//!   the matching category;
//! * **Frequency + Category** — category composition preserved, slots
//!   filled frequency-proportionally within each category.
//!
//! Sampled recipes are emitted as *local pool indices* aligned with
//! [`crate::pairing::OverlapCache`] built over the same cuisine, so
//! scoring is pure table lookups.

use rand::{Rng, RngExt};

use culinaria_flavordb::{Category, FlavorDb};
use culinaria_recipedb::Cuisine;
use culinaria_stats::WeightedAliasSampler;

use crate::view::{CuisineView, FlavorViewRef};

/// Which randomized model to sample from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NullModel {
    /// Uniform ingredient choice.
    Random,
    /// Frequency-of-use preserved.
    Frequency,
    /// Per-recipe category composition preserved, uniform within
    /// category.
    Category,
    /// Category composition preserved and frequency-proportional within
    /// category.
    FrequencyCategory,
}

impl NullModel {
    /// All four models in the paper's presentation order.
    pub const ALL: [NullModel; 4] = [
        NullModel::Random,
        NullModel::Frequency,
        NullModel::Category,
        NullModel::FrequencyCategory,
    ];

    /// Display name as used in Fig 4.
    pub fn name(self) -> &'static str {
        match self {
            NullModel::Random => "Random Cuisine",
            NullModel::Frequency => "Ingredient Frequency",
            NullModel::Category => "Ingredient Category",
            NullModel::FrequencyCategory => "Frequency + Category",
        }
    }

    /// Short column-header form.
    pub fn short(self) -> &'static str {
        match self {
            NullModel::Random => "random",
            NullModel::Frequency => "freq",
            NullModel::Category => "cat",
            NullModel::FrequencyCategory => "freq+cat",
        }
    }

    /// Dense index in `0..4`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            NullModel::Random => 0,
            NullModel::Frequency => 1,
            NullModel::Category => 2,
            NullModel::FrequencyCategory => 3,
        }
    }
}

impl std::fmt::Display for NullModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable per-worker scratch for allocation-free sampling via
/// [`CuisineSampler::generate_into`].
///
/// Holds the membership bitmask of the recipe under construction (one
/// bit per pool position), replacing the `chosen.contains(..)` linear
/// scans of the reference path. A single scratch is reused across the
/// 100,000 recipes a Monte-Carlo worker generates.
#[derive(Debug, Clone, Default)]
pub struct SampleScratch {
    mask: Vec<u64>,
}

impl SampleScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> SampleScratch {
        SampleScratch::default()
    }

    /// Reset for a pool of `n_pool` positions.
    fn begin(&mut self, n_pool: usize) {
        self.mask.clear();
        self.mask.resize(n_pool.div_ceil(64), 0);
    }

    #[inline]
    fn contains(&self, c: u32) -> bool {
        (self.mask[c as usize / 64] >> (c % 64)) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, c: u32) {
        self.mask[c as usize / 64] |= 1u64 << (c % 64);
    }
}

/// Immutable sampling state for one cuisine; shared read-only across
/// Monte-Carlo threads.
#[derive(Debug, Clone)]
pub struct CuisineSampler {
    /// Pool size (distinct ingredients in the cuisine).
    n_pool: usize,
    /// Observed recipe sizes (≥ 2 only), resampled uniformly.
    sizes: Vec<u32>,
    /// Frequency sampler over pool positions.
    freq: WeightedAliasSampler,
    /// Pool positions per category.
    by_category: Vec<Vec<u32>>,
    /// Frequency sampler within each category (None when the category
    /// is absent from the pool).
    freq_by_category: Vec<Option<WeightedAliasSampler>>,
    /// Per observed recipe, the category of each of its ingredients —
    /// the "category composition" templates.
    templates: Vec<Vec<Category>>,
}

impl CuisineSampler {
    /// Build from a cuisine. The pool and its local indexing are the
    /// cuisine's sorted distinct ingredient set — identical to
    /// [`crate::pairing::OverlapCache::for_cuisine`] on the same
    /// cuisine.
    ///
    /// Returns `None` for cuisines with no recipe of size ≥ 2 (no
    /// pairing signal exists to compare against).
    pub fn build(db: &FlavorDb, cuisine: &Cuisine<'_>) -> Option<CuisineSampler> {
        CuisineSampler::build_view(
            FlavorViewRef::Owned(db),
            &CuisineView::Owned(cuisine.clone()),
        )
    }

    /// [`CuisineSampler::build`] over a [`FlavorViewRef`] /
    /// [`CuisineView`] pair — the single implementation both
    /// representations share. Pool ordering, frequency weights and
    /// category templates are identical across representations, so the
    /// sampler consumes any RNG stream identically.
    pub fn build_view(
        view: FlavorViewRef<'_>,
        cuisine: &CuisineView<'_>,
    ) -> Option<CuisineSampler> {
        let pool = cuisine.ingredient_set();
        if pool.is_empty() {
            return None;
        }
        let freq_map = cuisine.frequencies();
        let weights: Vec<f64> = pool
            .iter()
            .map(|id| freq_map.get(id).copied().unwrap_or(0) as f64)
            .collect();
        let freq = WeightedAliasSampler::new(&weights).ok()?;

        let n_cat = Category::ALL.len();
        let mut by_category: Vec<Vec<u32>> = vec![Vec::new(); n_cat];
        for (pos, id) in pool.iter().enumerate() {
            let cat = view.category(*id)?;
            by_category[cat.index()].push(pos as u32);
        }
        let freq_by_category: Vec<Option<WeightedAliasSampler>> = by_category
            .iter()
            .map(|members| {
                if members.is_empty() {
                    return None;
                }
                let w: Vec<f64> = members
                    .iter()
                    .map(|&p| weights[p as usize].max(1e-9))
                    .collect();
                WeightedAliasSampler::new(&w).ok()
            })
            .collect();

        let mut sizes = Vec::new();
        let mut templates = Vec::new();
        for ings in cuisine.recipe_ingredient_lists() {
            if ings.len() < 2 {
                continue;
            }
            sizes.push(ings.len() as u32);
            let cats: Vec<Category> = ings
                .iter()
                .map(|&id| view.category(id).expect("live ingredient"))
                .collect();
            templates.push(cats);
        }
        if sizes.is_empty() {
            return None;
        }

        Some(CuisineSampler {
            n_pool: pool.len(),
            sizes,
            freq,
            by_category,
            freq_by_category,
            templates,
        })
    }

    /// Pool size.
    pub fn pool_len(&self) -> usize {
        self.n_pool
    }

    /// Number of size/template records (observed recipes of size ≥ 2).
    pub fn n_templates(&self) -> usize {
        self.templates.len()
    }

    /// Draw a distinct position via `draw`, rejecting already-chosen
    /// positions, with a bounded retry budget and a deterministic
    /// fallback scan.
    fn draw_distinct<R: Rng + ?Sized>(
        &self,
        chosen: &[u32],
        rng: &mut R,
        mut draw: impl FnMut(&mut R) -> u32,
    ) -> Option<u32> {
        for _ in 0..64 {
            let c = draw(rng);
            if !chosen.contains(&c) {
                return Some(c);
            }
        }
        (0..self.n_pool as u32).find(|c| !chosen.contains(c))
    }

    /// Masked variant of [`CuisineSampler::draw_distinct`]: membership
    /// is tested against the scratch bitmask in O(1) instead of a
    /// linear scan. Consumes the RNG identically to the reference path
    /// (a membership test returns the same answer either way), which is
    /// what keeps [`CuisineSampler::generate_into`] stream-compatible
    /// with [`CuisineSampler::generate`].
    fn draw_distinct_masked<R: Rng + ?Sized>(
        &self,
        scratch: &SampleScratch,
        rng: &mut R,
        mut draw: impl FnMut(&mut R) -> u32,
    ) -> Option<u32> {
        for _ in 0..64 {
            let c = draw(rng);
            if !scratch.contains(c) {
                return Some(c);
            }
        }
        (0..self.n_pool as u32).find(|&c| !scratch.contains(c))
    }

    /// Allocation-free [`CuisineSampler::generate`]: writes the recipe
    /// into `out` and tracks distinctness in `scratch`'s bitmask.
    ///
    /// Given the same RNG state this produces exactly the recipe
    /// `generate` would (and leaves the RNG in the same state) — the
    /// `generate_into_matches_generate` test pins that contract. The
    /// Monte-Carlo workers call this path; `generate` remains as the
    /// allocating reference implementation.
    pub fn generate_into<R: Rng + ?Sized>(
        &self,
        model: NullModel,
        rng: &mut R,
        out: &mut Vec<u32>,
        scratch: &mut SampleScratch,
    ) {
        out.clear();
        scratch.begin(self.n_pool);
        match model {
            NullModel::Random | NullModel::Frequency => {
                let size = self.sizes[rng.random_range(0..self.sizes.len())] as usize;
                let size = size.min(self.n_pool);
                while out.len() < size {
                    let next = match model {
                        NullModel::Random => self.draw_distinct_masked(scratch, rng, |r| {
                            r.random_range(0..self.n_pool) as u32
                        }),
                        _ => {
                            self.draw_distinct_masked(scratch, rng, |r| self.freq.sample(r) as u32)
                        }
                    };
                    match next {
                        Some(c) => {
                            scratch.insert(c);
                            out.push(c);
                        }
                        None => break,
                    }
                }
            }
            NullModel::Category | NullModel::FrequencyCategory => {
                let template = &self.templates[rng.random_range(0..self.templates.len())];
                for &cat in template {
                    let members = &self.by_category[cat.index()];
                    let next = if members.is_empty() {
                        self.draw_distinct_masked(scratch, rng, |r| {
                            r.random_range(0..self.n_pool) as u32
                        })
                    } else {
                        let within = match model {
                            NullModel::Category => self.draw_distinct_masked(scratch, rng, |r| {
                                members[r.random_range(0..members.len())]
                            }),
                            _ => {
                                let sampler = self.freq_by_category[cat.index()]
                                    .as_ref()
                                    .expect("non-empty category has a sampler");
                                self.draw_distinct_masked(scratch, rng, |r| {
                                    members[sampler.sample(r)]
                                })
                            }
                        };
                        let exhausted = members.iter().all(|&m| scratch.contains(m));
                        match within {
                            Some(c) if !exhausted || !scratch.contains(c) => Some(c),
                            _ => self.draw_distinct_masked(scratch, rng, |r| {
                                r.random_range(0..self.n_pool) as u32
                            }),
                        }
                    };
                    match next {
                        Some(c) => {
                            scratch.insert(c);
                            out.push(c);
                        }
                        None => break,
                    }
                }
            }
        }
    }

    /// Sample one randomized recipe as local pool positions. The output
    /// length equals the drawn size except when the pool itself is too
    /// small.
    pub fn generate<R: Rng + ?Sized>(&self, model: NullModel, rng: &mut R) -> Vec<u32> {
        match model {
            NullModel::Random | NullModel::Frequency => {
                let size = self.sizes[rng.random_range(0..self.sizes.len())] as usize;
                let size = size.min(self.n_pool);
                let mut chosen: Vec<u32> = Vec::with_capacity(size);
                while chosen.len() < size {
                    let next = match model {
                        NullModel::Random => self
                            .draw_distinct(&chosen, rng, |r| r.random_range(0..self.n_pool) as u32),
                        _ => self.draw_distinct(&chosen, rng, |r| self.freq.sample(r) as u32),
                    };
                    match next {
                        Some(c) => chosen.push(c),
                        None => break,
                    }
                }
                chosen
            }
            NullModel::Category | NullModel::FrequencyCategory => {
                let template = &self.templates[rng.random_range(0..self.templates.len())];
                let mut chosen: Vec<u32> = Vec::with_capacity(template.len());
                for &cat in template {
                    let members = &self.by_category[cat.index()];
                    let next = if members.is_empty() {
                        // Category vanished from the pool (cannot happen
                        // for templates drawn from the same cuisine, but
                        // guard anyway): fall back to uniform.
                        self.draw_distinct(&chosen, rng, |r| r.random_range(0..self.n_pool) as u32)
                    } else {
                        // Distinctness may be unsatisfiable within the
                        // category (template wants 3 spices, pool has 2):
                        // bounded rejection then fall back to uniform
                        // over the whole pool to preserve recipe size.
                        let within = match model {
                            NullModel::Category => self.draw_distinct(&chosen, rng, |r| {
                                members[r.random_range(0..members.len())]
                            }),
                            _ => {
                                let sampler = self.freq_by_category[cat.index()]
                                    .as_ref()
                                    .expect("non-empty category has a sampler");
                                self.draw_distinct(&chosen, rng, |r| members[sampler.sample(r)])
                            }
                        };
                        let exhausted = members.iter().all(|m| chosen.contains(m));
                        match within {
                            Some(c) if !exhausted || !chosen.contains(&c) => Some(c),
                            _ => self.draw_distinct(&chosen, rng, |r| {
                                r.random_range(0..self.n_pool) as u32
                            }),
                        }
                    };
                    match next {
                        Some(c) => chosen.push(c),
                        None => break,
                    }
                }
                chosen
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::IngredientId;
    use culinaria_recipedb::{RecipeStore, Region, Source};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 6-ingredient db: 3 herbs, 2 spices, 1 meat.
    fn fixture() -> (FlavorDb, RecipeStore) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(20);
        let cats = [
            ("h1", Category::Herb),
            ("h2", Category::Herb),
            ("h3", Category::Herb),
            ("s1", Category::Spice),
            ("s2", Category::Spice),
            ("m1", Category::Meat),
        ];
        for (i, (name, cat)) in cats.iter().enumerate() {
            db.add_ingredient(name, *cat, vec![culinaria_flavordb::MoleculeId(i as u32)])
                .unwrap();
        }
        let mut store = RecipeStore::new();
        let ing = |i: u32| IngredientId(i);
        // Frequencies: h1 appears 3×, s1 2×, others once or twice.
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, vec![ing(0), ing(3)])
            .unwrap();
        store
            .add_recipe(
                "r2",
                Region::Italy,
                Source::Synthetic,
                vec![ing(0), ing(1), ing(3)],
            )
            .unwrap();
        store
            .add_recipe(
                "r3",
                Region::Italy,
                Source::Synthetic,
                vec![ing(0), ing(4), ing(5)],
            )
            .unwrap();
        (db, store)
    }

    fn sampler() -> (FlavorDb, RecipeStore) {
        fixture()
    }

    #[test]
    fn build_and_shape() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        // h3 (id 2) is registered but never used by a recipe, so the
        // cuisine's pool has 5 ingredients.
        assert_eq!(s.pool_len(), 5);
        assert_eq!(s.n_templates(), 3);
    }

    #[test]
    fn empty_cuisine_gives_none() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Japan);
        assert!(CuisineSampler::build(&db, &cuisine).is_none());
    }

    #[test]
    fn generated_recipes_distinct_and_sized() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for model in NullModel::ALL {
            for _ in 0..500 {
                let r = s.generate(model, &mut rng);
                assert!(r.len() >= 2 && r.len() <= 3, "{model}: size {}", r.len());
                let mut d = r.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), r.len(), "{model}: duplicates in {r:?}");
                assert!(r.iter().all(|&p| (p as usize) < s.pool_len()));
            }
        }
    }

    #[test]
    fn size_distribution_preserved() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut twos = 0;
        let mut threes = 0;
        for _ in 0..6000 {
            match s.generate(NullModel::Random, &mut rng).len() {
                2 => twos += 1,
                3 => threes += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        // Observed sizes are [2, 3, 3] → expect ~1/3 twos.
        let frac = twos as f64 / 6000.0;
        assert!((frac - 1.0 / 3.0).abs() < 0.05, "frac {frac}");
        let _ = threes;
    }

    #[test]
    fn frequency_model_prefers_frequent_ingredients() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 6];
        for _ in 0..20_000 {
            for p in s.generate(NullModel::Frequency, &mut rng) {
                counts[p as usize] += 1;
            }
        }
        // h1 (pos 0, freq 3) must be drawn clearly more often than h2
        // (pos 1, freq 1). Distinctness within a recipe flattens the
        // raw 3:1 ratio, so require only a comfortable margin.
        assert!(
            counts[0] as f64 > counts[1] as f64 * 1.5,
            "freq not respected: {counts:?}"
        );
        // Under Random they should be near-equal.
        let mut counts_u = [0usize; 6];
        for _ in 0..20_000 {
            for p in s.generate(NullModel::Random, &mut rng) {
                counts_u[p as usize] += 1;
            }
        }
        let ratio = counts_u[0] as f64 / counts_u[1] as f64;
        assert!(ratio < 1.3 && ratio > 0.7, "uniform skewed: {counts_u:?}");
    }

    #[test]
    fn category_model_preserves_composition() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Templates are {H,S}, {H,H,S}, {H,S,M}. A generated recipe's
        // category multiset must match one of those.
        let cat_of = |p: u32| -> Category {
            let id = cuisine.ingredient_set()[p as usize];
            db.ingredient(id).unwrap().category
        };
        let mut allowed: Vec<Vec<Category>> = vec![
            vec![Category::Herb, Category::Spice],
            vec![Category::Herb, Category::Herb, Category::Spice],
            vec![Category::Herb, Category::Spice, Category::Meat],
        ];
        for t in &mut allowed {
            t.sort();
        }
        for model in [NullModel::Category, NullModel::FrequencyCategory] {
            for _ in 0..1000 {
                let r = s.generate(model, &mut rng);
                let mut cats: Vec<Category> = r.iter().map(|&p| cat_of(p)).collect();
                cats.sort();
                assert!(
                    allowed.contains(&cats),
                    "{model}: composition {cats:?} not in templates"
                );
            }
        }
    }

    #[test]
    fn generate_into_matches_generate() {
        let (db, store) = sampler();
        let cuisine = store.cuisine(Region::Italy);
        let s = CuisineSampler::build(&db, &cuisine).unwrap();
        let mut out = Vec::new();
        let mut scratch = SampleScratch::new();
        for model in NullModel::ALL {
            // Two clones of one RNG: the reference and optimized paths
            // must produce identical recipes from identical streams,
            // draw after draw (which also proves they consume the same
            // number of RNG outputs).
            let mut rng_a = StdRng::seed_from_u64(0xFEED ^ model.index() as u64);
            let mut rng_b = rng_a.clone();
            for step in 0..2000 {
                let reference = s.generate(model, &mut rng_a);
                s.generate_into(model, &mut rng_b, &mut out, &mut scratch);
                assert_eq!(reference, out, "{model}: diverged at draw {step}");
            }
        }
    }

    #[test]
    fn model_metadata() {
        assert_eq!(NullModel::ALL.len(), 4);
        for (i, m) in NullModel::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        assert_eq!(NullModel::Random.short(), "random");
        assert_eq!(
            NullModel::FrequencyCategory.to_string(),
            "Frequency + Category"
        );
    }
}
