//! Ingredient-popularity scaling (Fig 3b).
//!
//! For each cuisine the paper plots the frequency of use of every
//! ingredient, normalized by the most popular one, against popularity
//! rank, and finds an "exceptionally consistent scaling phenomenon"
//! across all 22 regions. We expose the per-region normalized
//! rank-frequency series, the cumulative-share inset, and the fitted
//! Zipf exponent used to compare regions quantitatively.

use culinaria_recipedb::{Cuisine, RecipeStore, Region};
use culinaria_stats::powerlaw::{cumulative_share, rank_frequency, zipf_exponent};
use culinaria_tabular::{Column, Frame};

/// The popularity profile of one cuisine.
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityProfile {
    /// The region.
    pub region: Region,
    /// Normalized rank-frequency series (rank 1 first, value 1.0).
    pub rank_frequency: Vec<f64>,
    /// Cumulative share of usage covered by the top-k ranks.
    pub cumulative_share: Vec<f64>,
    /// Fitted Zipf exponent (log-log OLS); `None` for degenerate
    /// cuisines.
    pub zipf_exponent: Option<f64>,
}

/// Compute the popularity profile of a cuisine.
pub fn popularity_profile(cuisine: &Cuisine<'_>) -> PopularityProfile {
    let freqs: Vec<u64> = cuisine.frequencies().into_values().collect();
    PopularityProfile {
        region: cuisine.region(),
        rank_frequency: rank_frequency(&freqs),
        cumulative_share: cumulative_share(&freqs),
        zipf_exponent: zipf_exponent(&freqs).map(|(s, _)| s),
    }
}

/// Profiles for every populated region.
pub fn world_popularity_profiles(store: &RecipeStore) -> Vec<PopularityProfile> {
    store
        .regions()
        .into_iter()
        .map(|r| popularity_profile(&store.cuisine(r)))
        .collect()
}

/// Fig 3b as a frame: `rank` plus one normalized-frequency column per
/// region (rows truncated to the shortest region's rank count so the
/// frame is rectangular; the paper's plot is log-log over shared
/// ranks).
pub fn popularity_frame(profiles: &[PopularityProfile]) -> Frame {
    let n_ranks = profiles
        .iter()
        .map(|p| p.rank_frequency.len())
        .min()
        .unwrap_or(0);
    let mut f = Frame::new();
    let ranks: Vec<i64> = (1..=n_ranks as i64).collect();
    f.add_column("rank", Column::from_i64s(&ranks))
        .expect("fresh frame");
    for p in profiles {
        f.add_column(
            p.region.code(),
            Column::from_f64s(&p.rank_frequency[..n_ranks]),
        )
        .expect("region codes unique");
    }
    f
}

/// Summary frame: per-region Zipf exponent and top-10 cumulative share.
pub fn popularity_summary_frame(profiles: &[PopularityProfile]) -> Frame {
    let mut f = Frame::new();
    let codes: Vec<&str> = profiles.iter().map(|p| p.region.code()).collect();
    f.add_column("region", Column::from_strs(&codes))
        .expect("fresh frame");
    let zipf: Vec<Option<f64>> = profiles.iter().map(|p| p.zipf_exponent).collect();
    f.add_column("zipf_exponent", Column::Float(zipf))
        .expect("fresh column");
    let top10: Vec<Option<f64>> = profiles
        .iter()
        .map(|p| {
            let k = 10.min(p.cumulative_share.len());
            (k > 0).then(|| p.cumulative_share[k - 1])
        })
        .collect();
    f.add_column("top10_share", Column::Float(top10))
        .expect("fresh column");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    #[test]
    fn profiles_normalized_and_monotone() {
        let w = generate_world(&WorldConfig::tiny());
        for p in world_popularity_profiles(&w.recipes) {
            assert_eq!(p.rank_frequency[0], 1.0, "{}", p.region);
            for pair in p.rank_frequency.windows(2) {
                assert!(pair[0] >= pair[1], "{} not sorted", p.region);
            }
            let last = *p.cumulative_share.last().unwrap();
            assert!((last - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaling_is_consistent_across_regions() {
        // The paper's Fig 3b point: every region shows the same scaling.
        let w = generate_world(&WorldConfig::tiny());
        let exps: Vec<f64> = world_popularity_profiles(&w.recipes)
            .iter()
            .filter_map(|p| p.zipf_exponent)
            .collect();
        assert_eq!(exps.len(), 22);
        let mean = exps.iter().sum::<f64>() / exps.len() as f64;
        for e in &exps {
            assert!(
                (e - mean).abs() < 0.5,
                "exponent {e} far from cross-region mean {mean}"
            );
        }
        assert!(
            mean > 0.3,
            "rank curves should decay (mean exponent {mean})"
        );
    }

    #[test]
    fn frames_are_rectangular() {
        let w = generate_world(&WorldConfig::tiny());
        let profiles = world_popularity_profiles(&w.recipes);
        let f = popularity_frame(&profiles);
        assert_eq!(f.n_cols(), 23); // rank + 22 regions
        assert!(f.n_rows() > 0);
        let s = popularity_summary_frame(&profiles);
        assert_eq!(s.n_rows(), 22);
        assert!(s.has_column("zipf_exponent"));
    }

    #[test]
    fn empty_profiles_give_empty_frame() {
        let f = popularity_frame(&[]);
        assert_eq!(f.n_rows(), 0);
    }
}
