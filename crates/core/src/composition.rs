//! Category-composition analysis (Fig 2): the share of ingredient
//! usages each category accounts for, per region and for the pooled
//! WORLD aggregate.

use culinaria_flavordb::{Category, FlavorDb};
use culinaria_recipedb::{Cuisine, RecipeStore};
use culinaria_tabular::{Column, Frame};

/// Usage share per category for one cuisine: `share[c]` is the fraction
/// of (recipe, ingredient) usages falling in category `c`. All zeros
/// for an empty cuisine.
pub fn category_shares(db: &FlavorDb, cuisine: &Cuisine<'_>) -> [f64; 21] {
    let mut counts = [0u64; 21];
    let mut total = 0u64;
    for r in cuisine.recipes() {
        for &id in r.ingredients() {
            let cat = db.ingredient(id).expect("live ingredient").category;
            counts[cat.index()] += 1;
            total += 1;
        }
    }
    let mut shares = [0.0; 21];
    if total > 0 {
        for (s, &c) in shares.iter_mut().zip(&counts) {
            *s = c as f64 / total as f64;
        }
    }
    shares
}

/// Pooled usage share over every recipe in the store (the WORLD row).
pub fn world_category_shares(db: &FlavorDb, store: &RecipeStore) -> [f64; 21] {
    let mut counts = [0u64; 21];
    let mut total = 0u64;
    for r in store.recipes() {
        for &id in r.ingredients() {
            let cat = db.ingredient(id).expect("live ingredient").category;
            counts[cat.index()] += 1;
            total += 1;
        }
    }
    let mut shares = [0.0; 21];
    if total > 0 {
        for (s, &c) in shares.iter_mut().zip(&counts) {
            *s = c as f64 / total as f64;
        }
    }
    shares
}

/// The Fig 2 heatmap as a frame: one row per populated region plus a
/// final `WORLD` row; one column per category (plus `region`).
pub fn composition_frame(db: &FlavorDb, store: &RecipeStore) -> Frame {
    let regions = store.regions();
    let mut rows: Vec<(String, [f64; 21])> = regions
        .iter()
        .map(|&r| (r.code().to_owned(), category_shares(db, &store.cuisine(r))))
        .collect();
    rows.push(("WORLD".to_owned(), world_category_shares(db, store)));

    let mut f = Frame::new();
    let labels: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
    f.add_column("region", Column::from_strs(&labels))
        .expect("fresh frame");
    for cat in Category::ALL {
        let vals: Vec<f64> = rows.iter().map(|(_, s)| s[cat.index()]).collect();
        f.add_column(cat.name(), Column::from_f64s(&vals))
            .expect("category names unique");
    }
    f
}

/// Category usage *counts* per cuisine (the χ² input).
pub fn category_counts(db: &FlavorDb, cuisine: &Cuisine<'_>) -> [u64; 21] {
    let mut counts = [0u64; 21];
    for r in cuisine.recipes() {
        for &id in r.ingredients() {
            let cat = db.ingredient(id).expect("live ingredient").category;
            counts[cat.index()] += 1;
        }
    }
    counts
}

/// Quantify each region's deviation from the WORLD composition with a
/// χ² goodness-of-fit test: one row per populated region with the
/// statistic, degrees of freedom, and p-value. This turns Fig 2's
/// visual "salient and subtle patterns" into numbers.
pub fn composition_deviation_frame(db: &FlavorDb, store: &RecipeStore) -> Frame {
    let world = world_category_shares(db, store);
    let mut regions = Vec::new();
    let mut stats = Vec::new();
    let mut dofs = Vec::new();
    let mut ps = Vec::new();
    for region in store.regions() {
        let counts = category_counts(db, &store.cuisine(region));
        let Some(result) = culinaria_stats::chi2::chi2_goodness_of_fit(&counts, &world) else {
            continue;
        };
        regions.push(region.code());
        stats.push(result.statistic);
        dofs.push(result.dof as i64);
        ps.push(result.p_value);
    }
    Frame::from_columns(vec![
        ("region", Column::from_strs(&regions)),
        ("chi2", Column::from_f64s(&stats)),
        ("dof", Column::from_i64s(&dofs)),
        ("p_value", Column::from_f64s(&ps)),
    ])
    .expect("fresh frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_flavordb::IngredientId;
    use culinaria_recipedb::{Region, Source};

    fn fixture() -> (FlavorDb, RecipeStore) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(5);
        db.add_ingredient("v", Category::Vegetable, vec![]).unwrap();
        db.add_ingredient("d", Category::Dairy, vec![]).unwrap();
        db.add_ingredient("s", Category::Spice, vec![]).unwrap();
        let mut store = RecipeStore::new();
        let ing = |i: u32| IngredientId(i);
        store
            .add_recipe("a", Region::France, Source::Synthetic, vec![ing(0), ing(1)])
            .unwrap();
        store
            .add_recipe("b", Region::France, Source::Synthetic, vec![ing(1), ing(2)])
            .unwrap();
        store
            .add_recipe("c", Region::Italy, Source::Synthetic, vec![ing(0), ing(2)])
            .unwrap();
        (db, store)
    }

    #[test]
    fn shares_sum_to_one() {
        let (db, store) = fixture();
        let shares = category_shares(&db, &store.cuisine(Region::France));
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // France: 4 usages, 2 dairy → 0.5 dairy share.
        assert!((shares[Category::Dairy.index()] - 0.5).abs() < 1e-12);
        assert!((shares[Category::Vegetable.index()] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_cuisine_all_zero() {
        let (db, store) = fixture();
        let shares = category_shares(&db, &store.cuisine(Region::Japan));
        assert!(shares.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn world_pools_all_regions() {
        let (db, store) = fixture();
        let w = world_category_shares(&db, &store);
        // 6 usages total: v ×2, d ×2, s ×2.
        for cat in [Category::Vegetable, Category::Dairy, Category::Spice] {
            assert!((w[cat.index()] - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn counts_match_shares() {
        let (db, store) = fixture();
        let cuisine = store.cuisine(Region::France);
        let counts = category_counts(&db, &cuisine);
        let shares = category_shares(&db, &cuisine);
        let total: u64 = counts.iter().sum();
        for (c, s) in counts.iter().zip(&shares) {
            assert!((*c as f64 / total as f64 - s).abs() < 1e-12);
        }
    }

    #[test]
    fn deviation_frame_flags_skewed_regions() {
        use culinaria_datagen::{generate_world, WorldConfig};
        let w = generate_world(&WorldConfig::tiny());
        let f = composition_deviation_frame(&w.flavor, &w.recipes);
        assert_eq!(f.n_rows(), 22);
        // Every region deviates from WORLD (the generator builds in
        // regional preferences): χ² significant nearly everywhere.
        let significant = f
            .column("p_value")
            .expect("column")
            .iter_numeric()
            .filter(|&p| p < 0.05)
            .count();
        assert!(significant >= 18, "only {significant}/22 significant");
    }

    #[test]
    fn frame_has_world_row_and_all_categories() {
        let (db, store) = fixture();
        let f = composition_frame(&db, &store);
        assert_eq!(f.n_rows(), 3); // FRA, ITA, WORLD
        assert_eq!(f.n_cols(), 22); // region + 21 categories
        let last = f.get(2, "region").unwrap();
        assert_eq!(last.as_str().unwrap(), "WORLD");
    }
}
