#![warn(missing_docs)]

//! # culinaria-core
//!
//! The paper's primary contribution: the multi-level food-pairing
//! analysis framework over recipes, ingredients, and flavor molecules.
//!
//! * [`pairing`] — the flavor-sharing score
//!   `N_s(R) = 2/(n_R(n_R−1)) Σ_{i<j} |F_i ∩ F_j|` and a pairwise
//!   overlap cache that makes cuisine-scale scoring cheap;
//! * [`null_models`] — the four randomized-cuisine models of §IV.B
//!   (Random, Ingredient Frequency, Ingredient Category,
//!   Frequency + Category), each preserving the cuisine's ingredient
//!   set and recipe-size distribution;
//! * [`monte_carlo`] — the 100,000-recipe Monte-Carlo engine, parallel
//!   via the shared worker pool with per-block deterministic seeds;
//! * [`z_analysis`] — z-scores of each cuisine against each null model
//!   (Fig 4) and the full 22-region analysis driver;
//! * [`contribution`] — per-ingredient contribution to a cuisine's
//!   pairing (% change of ⟨N_s⟩ on removal; Fig 5);
//! * [`composition`] — category-composition heatmap data (Fig 2);
//! * [`size_dist`] — recipe-size distributions (Fig 3a);
//! * [`popularity`] — ingredient rank-frequency curves (Fig 3b);
//! * [`ntuple`] — the paper's proposed higher-order extension: flavor
//!   sharing over ingredient triples and quadruples;
//! * [`evolution`] — the copy-mutate culinary evolution model the
//!   conclusions cite (Jain & Bagler 2018) as the generative
//!   explanation for the observed scaling;
//! * [`robustness`] — the §V open question "how robust are the
//!   patterns?": recipe subsampling and flavor-profile dilution;
//! * [`generation`] — novel-recipe generation and recipe tweaking, the
//!   applications the abstract motivates;
//! * [`network`] — the Ahn-style flavor network (nodes = ingredients,
//!   edge weights = shared compounds) with backbones, hubs, and
//!   clustering statistics;
//! * [`streaming`] — incrementally maintained frequency tables,
//!   category compositions, overlap caches, and running pairing stats
//!   for streaming ingestion, bit-identical to the batch recomputes.

pub mod classify;
pub mod composition;
pub mod contribution;
pub mod cooking;
pub mod error;
pub mod evolution;
pub mod fingerprint;
pub mod generation;
pub mod monte_carlo;
pub mod network;
pub mod ntuple;
pub mod null_models;
pub mod pairing;
pub mod popularity;
pub mod robustness;
pub mod size_dist;
pub mod streaming;
pub mod taste;
pub mod view;
pub mod z_analysis;

pub use error::{FailureCause, StageFailure};
pub use monte_carlo::MonteCarloConfig;
pub use null_models::NullModel;
pub use pairing::{
    mean_cuisine_score, recipe_pairing_score, recipe_pairing_score_view, OverlapCache,
};
pub use streaming::{RegionStream, StreamState};
pub use view::{CuisineView, FlavorViewRef, RecipesViewRef};
pub use z_analysis::{
    analyze_cuisine, analyze_cuisine_view, analyze_world, analyze_world_view, region_overlap_cache,
    try_analyze_cuisine_with_cache_observed, CuisineAnalysis,
};
