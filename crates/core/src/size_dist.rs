//! Recipe-size distributions (Fig 3a).

use culinaria_recipedb::{Cuisine, RecipeStore};
use culinaria_stats::IntHistogram;
use culinaria_tabular::{Column, Frame};

/// Histogram of recipe sizes for one cuisine.
pub fn size_histogram(cuisine: &Cuisine<'_>) -> IntHistogram {
    IntHistogram::from_values(cuisine.recipe_sizes().into_iter().map(|s| s as i64))
}

/// Pooled histogram over the whole store (the WORLD curve of Fig 3a).
pub fn world_size_histogram(store: &RecipeStore) -> IntHistogram {
    IntHistogram::from_values(store.recipes().map(|r| r.size() as i64))
}

/// Fig 3a as a frame: one row per observed size with per-region P(s)
/// columns, a pooled `WORLD` column, and the cumulative WORLD curve
/// (the inset).
pub fn size_distribution_frame(store: &RecipeStore) -> Frame {
    let world = world_size_histogram(store);
    let sizes: Vec<i64> = world.iter().map(|(v, _)| v).collect();
    let mut f = Frame::new();
    f.add_column("size", Column::from_i64s(&sizes))
        .expect("fresh frame");

    for region in store.regions() {
        let h = size_histogram(&store.cuisine(region));
        let col: Vec<f64> = sizes.iter().map(|&s| h.pmf(s)).collect();
        f.add_column(region.code(), Column::from_f64s(&col))
            .expect("region codes unique");
    }

    let world_pmf: Vec<f64> = sizes.iter().map(|&s| world.pmf(s)).collect();
    f.add_column("WORLD", Column::from_f64s(&world_pmf))
        .expect("fresh column");
    let cdf = world.cumulative();
    let world_cdf: Vec<f64> = sizes.iter().map(|&s| cdf.at(s)).collect();
    f.add_column("WORLD_cumulative", Column::from_f64s(&world_cdf))
        .expect("fresh column");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};
    use culinaria_recipedb::Region;

    #[test]
    fn world_histogram_mean_matches_config() {
        let w = generate_world(&WorldConfig::tiny());
        let h = world_size_histogram(&w.recipes);
        let mean = h.mean().unwrap();
        assert!(
            (mean - WorldConfig::tiny().mean_recipe_size).abs() < 1.5,
            "mean {mean}"
        );
        // Bounded and thin-tailed.
        assert!(h.max().unwrap() <= 30);
        assert!(h.min().unwrap() >= 2);
    }

    #[test]
    fn per_region_histogram() {
        let w = generate_world(&WorldConfig::tiny());
        let h = size_histogram(&w.recipes.cuisine(Region::Italy));
        assert_eq!(
            h.total() as usize,
            w.recipes.n_region_recipes(Region::Italy)
        );
    }

    #[test]
    fn frame_shape_and_normalization() {
        let w = generate_world(&WorldConfig::tiny());
        let f = size_distribution_frame(&w.recipes);
        // size + 22 regions + WORLD + WORLD_cumulative.
        assert_eq!(f.n_cols(), 25);
        assert!(f.n_rows() > 3);
        // WORLD pmf sums to 1.
        let total: f64 = f.column("WORLD").unwrap().iter_numeric().sum();
        assert!((total - 1.0).abs() < 1e-9, "WORLD pmf sums to {total}");
        // Cumulative ends at 1.
        let last = f
            .get(f.n_rows() - 1, "WORLD_cumulative")
            .unwrap()
            .as_float()
            .unwrap();
        assert!((last - 1.0).abs() < 1e-9);
    }
}
