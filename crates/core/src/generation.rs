//! Novel-recipe generation — the paper's application question (§V):
//! *"What strategies could be developed to generate novel recipes that
//! are palatable?"* and the abstract's promise of "tweaking recipes".
//!
//! Strategies:
//!
//! * [`RecipeGenerator::generate_recipe`] — greedy construction over a cuisine's
//!   ingredient pool: start from a popular seed and repeatedly add the
//!   ingredient that best advances the objective, with a popularity
//!   prior so outputs stay recognizable as the cuisine;
//! * [`RecipeGenerator::suggest_swap`] — recipe tweaking: find the single ingredient
//!   replacement that most improves the objective while keeping the
//!   rest of the recipe fixed.
//!
//! Objectives mirror the pairing regimes: maximize flavor sharing
//! (uniform-pairing cuisines), minimize it (contrasting cuisines), or
//! match the cuisine's own mean (stay in character).

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_recipedb::Cuisine;

use crate::pairing::OverlapCache;

/// What the generator optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximize mean flavor sharing (uniform blend).
    MaximizeSharing,
    /// Minimize mean flavor sharing (contrasting blend).
    MinimizeSharing,
    /// Keep the recipe's N_s close to a target value (e.g. the
    /// cuisine's observed mean).
    TargetSharing(f64),
}

impl Objective {
    /// Higher is better.
    fn utility(&self, ns: f64) -> f64 {
        match *self {
            Objective::MaximizeSharing => ns,
            Objective::MinimizeSharing => -ns,
            Objective::TargetSharing(target) => -(ns - target).abs(),
        }
    }
}

/// A generated or tweaked recipe with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRecipe {
    /// The chosen ingredients.
    pub ingredients: Vec<IngredientId>,
    /// The recipe's flavor-sharing score N_s.
    pub ns: f64,
}

/// Generator over one cuisine's pool.
#[derive(Debug)]
pub struct RecipeGenerator<'a> {
    db: &'a FlavorDb,
    cache: OverlapCache,
    /// Pool positions ordered by cuisine popularity (most used first).
    by_popularity: Vec<u32>,
    /// How many of the most popular ingredients are candidates.
    candidate_pool: usize,
}

impl<'a> RecipeGenerator<'a> {
    /// Build a generator for a cuisine. `candidate_pool` bounds the
    /// working set to the most popular ingredients (the paper's
    /// "culinary fingerprint" lives there); pass `usize::MAX` for the
    /// full pool.
    pub fn new(db: &'a FlavorDb, cuisine: &Cuisine<'_>, candidate_pool: usize) -> Self {
        let cache = OverlapCache::for_cuisine(db, cuisine);
        let freq = cuisine.frequencies();
        let mut by_popularity: Vec<u32> = (0..cache.len() as u32).collect();
        by_popularity.sort_by_key(|&p| {
            let id = cache.pool()[p as usize];
            std::cmp::Reverse(freq.get(&id).copied().unwrap_or(0))
        });
        let candidate_pool = candidate_pool.min(by_popularity.len());
        RecipeGenerator {
            db,
            cache,
            by_popularity,
            candidate_pool,
        }
    }

    /// The ingredient name for reporting.
    pub fn name(&self, id: IngredientId) -> &str {
        &self.db.ingredient(id).expect("pool ids are live").name
    }

    fn candidates(&self) -> &[u32] {
        &self.by_popularity[..self.candidate_pool]
    }

    /// Greedily build a recipe of `size` ingredients for `objective`,
    /// seeded from the `seed_rank`-th most popular ingredient.
    ///
    /// Returns `None` when the pool is smaller than `size` or empty.
    pub fn generate_recipe(
        &self,
        size: usize,
        objective: Objective,
        seed_rank: usize,
    ) -> Option<GeneratedRecipe> {
        if size == 0 || self.candidates().len() < size {
            return None;
        }
        let mut chosen: Vec<u32> = vec![self.candidates()[seed_rank % self.candidates().len()]];
        while chosen.len() < size {
            let mut best: Option<(f64, u32)> = None;
            for &cand in self.candidates() {
                if chosen.contains(&cand) {
                    continue;
                }
                let mut trial = chosen.clone();
                trial.push(cand);
                let u = objective.utility(self.cache.score_local(&trial));
                if best.is_none_or(|(b, _)| u > b) {
                    best = Some((u, cand));
                }
            }
            chosen.push(best?.1);
        }
        let ns = self.cache.score_local(&chosen);
        let ingredients = chosen
            .iter()
            .map(|&p| self.cache.pool()[p as usize])
            .collect();
        Some(GeneratedRecipe { ingredients, ns })
    }

    /// Suggest the single-ingredient swap that most improves
    /// `objective` for an existing recipe. Returns the improved recipe
    /// and the `(removed, added)` pair, or `None` when no swap improves
    /// the objective (or the recipe references ingredients outside the
    /// cuisine pool).
    pub fn suggest_swap(
        &self,
        recipe: &[IngredientId],
        objective: Objective,
    ) -> Option<(GeneratedRecipe, IngredientId, IngredientId)> {
        let locals: Option<Vec<u32>> = recipe
            .iter()
            .map(|&id| self.cache.local_index(id))
            .collect();
        let locals = locals?;
        let base_u = objective.utility(self.cache.score_local(&locals));

        let mut best: Option<(f64, usize, u32)> = None;
        for slot in 0..locals.len() {
            for &cand in self.candidates() {
                if locals.contains(&cand) {
                    continue;
                }
                let mut trial = locals.clone();
                trial[slot] = cand;
                let u = objective.utility(self.cache.score_local(&trial));
                if u > base_u && best.is_none_or(|(b, _, _)| u > b) {
                    best = Some((u, slot, cand));
                }
            }
        }
        let (_, slot, cand) = best?;
        let removed = recipe[slot];
        let added = self.cache.pool()[cand as usize];
        let mut improved = locals;
        improved[slot] = cand;
        let ns = self.cache.score_local(&improved);
        let ingredients = improved
            .iter()
            .map(|&p| self.cache.pool()[p as usize])
            .collect();
        Some((GeneratedRecipe { ingredients, ns }, removed, added))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};
    use culinaria_recipedb::Region;

    fn setup() -> (culinaria_datagen::World, Region) {
        (generate_world(&WorldConfig::tiny()), Region::Italy)
    }

    #[test]
    fn maximize_beats_minimize() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 60);
        let hi = generator
            .generate_recipe(7, Objective::MaximizeSharing, 0)
            .expect("pool is large enough");
        let lo = generator
            .generate_recipe(7, Objective::MinimizeSharing, 0)
            .expect("pool is large enough");
        assert_eq!(hi.ingredients.len(), 7);
        assert_eq!(lo.ingredients.len(), 7);
        assert!(hi.ns > lo.ns, "max {} <= min {}", hi.ns, lo.ns);
    }

    #[test]
    fn generated_recipes_have_distinct_ingredients() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 40);
        for seed in 0..5 {
            let r = generator
                .generate_recipe(6, Objective::MaximizeSharing, seed)
                .expect("pool is large enough");
            let mut d = r.ingredients.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 6);
        }
    }

    #[test]
    fn target_objective_lands_near_target() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 60);
        let hi = generator
            .generate_recipe(7, Objective::MaximizeSharing, 0)
            .expect("feasible");
        let lo = generator
            .generate_recipe(7, Objective::MinimizeSharing, 0)
            .expect("feasible");
        let target = (hi.ns + lo.ns) / 2.0;
        let mid = generator
            .generate_recipe(7, Objective::TargetSharing(target), 0)
            .expect("feasible");
        let err_mid = (mid.ns - target).abs();
        let err_hi = (hi.ns - target).abs();
        assert!(err_mid <= err_hi, "target miss {err_mid} vs {err_hi}");
    }

    #[test]
    fn swap_improves_objective_when_possible() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 60);
        // Start from a sharing-minimizing recipe; a maximize-swap should
        // find an improvement.
        let lo = generator
            .generate_recipe(6, Objective::MinimizeSharing, 0)
            .expect("feasible");
        let (improved, removed, added) = generator
            .suggest_swap(&lo.ingredients, Objective::MaximizeSharing)
            .expect("an improving swap exists");
        assert!(improved.ns > lo.ns);
        assert!(lo.ingredients.contains(&removed));
        assert!(improved.ingredients.contains(&added));
        assert!(!lo.ingredients.contains(&added));
    }

    #[test]
    fn swap_on_foreign_recipe_is_none() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 20);
        // An ingredient id that is not in the cuisine pool.
        let foreign = culinaria_flavordb::IngredientId(u32::MAX - 1);
        assert!(generator
            .suggest_swap(&[foreign], Objective::MaximizeSharing)
            .is_none());
    }

    #[test]
    fn infeasible_sizes_rejected() {
        let (world, region) = setup();
        let cuisine = world.recipes.cuisine(region);
        let generator = RecipeGenerator::new(&world.flavor, &cuisine, 5);
        assert!(generator
            .generate_recipe(6, Objective::MaximizeSharing, 0)
            .is_none());
        assert!(generator
            .generate_recipe(0, Objective::MaximizeSharing, 0)
            .is_none());
    }
}
