//! Incremental analysis state for streaming ingestion.
//!
//! Batch analysis recomputes everything from the store. When recipes
//! arrive continuously (the import log of `culinaria_recipedb::wal`),
//! recomputing O(corpus) state per micro-batch wastes almost all of its
//! work: a new recipe touches one region, a handful of ingredients, and
//! a few overlap rows. [`StreamState`] maintains the batch products
//! incrementally:
//!
//! * **frequency tables** — global and per-region ingredient → recipe
//!   counts, exact integers equal to
//!   [`RecipeStore::global_frequencies`] /
//!   [`Cuisine::frequencies`](culinaria_recipedb::Cuisine::frequencies);
//! * **category compositions** — per-region usage counts per category,
//!   equal to [`crate::composition::category_counts`];
//! * **overlap caches** — per-region [`OverlapCache`]s grown by
//!   [`OverlapCache::extend`], recomputing only rows touched by new
//!   ingredients yet bit-identical to a cold build over the grown pool;
//! * **running pairing stats** — per-region Welford accumulators
//!   ([`RunningStats`]) over each recipe's N_s in arrival order.
//!
//! # Determinism
//!
//! Every maintained product is either exact integer arithmetic
//! (frequencies, categories, overlap cells) or a float fold in a
//! **defined order** (the running stats push per-recipe scores in store
//! order). Feeding recipes one at a time, in micro-batches, or in one
//! batch therefore yields bit-identical state — the tests pin this by
//! comparing an incrementally-fed state against cold batch recomputes
//! after every prefix.

use std::collections::{BTreeMap, HashMap};

use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_recipedb::{RecipeStore, Region};
use culinaria_stats::running::RunningStats;

use crate::error::StageFailure;
use crate::pairing::OverlapCache;

/// Per-region incremental state: the streaming counterpart of one
/// cuisine's batch analysis inputs.
#[derive(Debug, Clone)]
pub struct RegionStream {
    freq: HashMap<IngredientId, u64>,
    categories: [u64; 21],
    scores: RunningStats,
    overlap: OverlapCache,
    n_recipes: u64,
}

impl RegionStream {
    fn new() -> RegionStream {
        RegionStream {
            freq: HashMap::new(),
            categories: [0; 21],
            scores: RunningStats::new(),
            overlap: OverlapCache::from_parts(&[], Vec::new())
                .unwrap_or_else(|| unreachable!("empty cache is always well-formed")),
            n_recipes: 0,
        }
    }

    /// Ingredient → number of this region's recipes using it.
    pub fn frequencies(&self) -> &HashMap<IngredientId, u64> {
        &self.freq
    }

    /// Usage counts per category
    /// (= [`crate::composition::category_counts`]).
    pub fn category_counts(&self) -> &[u64; 21] {
        &self.categories
    }

    /// Welford accumulator over per-recipe N_s in arrival order
    /// (recipes with fewer than two ingredients carry no pairing
    /// information and are skipped, like the batch cuisine mean).
    pub fn pairing_stats(&self) -> &RunningStats {
        &self.scores
    }

    /// The region's incrementally-grown overlap cache — bit-identical
    /// to a cold [`OverlapCache::build`] over the region's current
    /// ingredient pool.
    pub fn overlap(&self) -> &OverlapCache {
        &self.overlap
    }

    /// Recipes ingested into this region.
    pub fn n_recipes(&self) -> u64 {
        self.n_recipes
    }
}

/// Incrementally maintained analysis state over a stream of stored
/// recipes. See the [module docs](self) for what it maintains and the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct StreamState {
    global_freq: HashMap<IngredientId, u64>,
    regions: Vec<RegionStream>,
    fed: usize,
}

impl Default for StreamState {
    fn default() -> Self {
        StreamState::new()
    }
}

impl StreamState {
    /// Empty state: no recipes seen.
    pub fn new() -> StreamState {
        StreamState {
            global_freq: HashMap::new(),
            regions: (0..Region::ALL.len())
                .map(|_| RegionStream::new())
                .collect(),
            fed: 0,
        }
    }

    /// Ingest one stored recipe (already resolved and deduplicated by
    /// the importer/store). Returns the recipe's N_s under the updated
    /// overlap cache — bit-identical to
    /// [`crate::pairing::recipe_pairing_score`] on the same ids.
    ///
    /// # Errors
    /// [`StageFailure`] when an ingredient id is dead in `db` (stage
    /// `stream.category`) or the overlap extension fails
    /// (stage `overlap.extend`).
    pub fn ingest_recipe(
        &mut self,
        db: &FlavorDb,
        region: Region,
        ingredients: &[IngredientId],
    ) -> Result<f64, StageFailure> {
        let slot = region.index();
        // Categories first: validates every id before any state mutates,
        // so a dead id leaves the state untouched.
        let mut cat_delta = [0u64; 21];
        for (k, &id) in ingredients.iter().enumerate() {
            let ing = db.ingredient(id).map_err(|e| {
                StageFailure::error(
                    "stream.category",
                    k,
                    format!("ingredient id {} is not usable: {e}", id.index()),
                )
            })?;
            cat_delta[ing.category.index()] += 1;
        }

        // Overlap pool growth: splice unseen ids into the sorted pool so
        // it stays equal to the cuisine's `ingredient_set()` ordering.
        let rs = &mut self.regions[slot];
        let mut fresh: Vec<IngredientId> = ingredients
            .iter()
            .copied()
            .filter(|&id| rs.overlap.local_index(id).is_none())
            .collect();
        if !fresh.is_empty() {
            fresh.sort_unstable();
            fresh.dedup();
            let mut pool = rs.overlap.pool().to_vec();
            pool.extend_from_slice(&fresh);
            pool.sort_unstable();
            rs.overlap = rs.overlap.extend(db, &pool)?;
        }

        for (c, d) in rs.categories.iter_mut().zip(&cat_delta) {
            *c += d;
        }
        for &id in ingredients {
            *rs.freq.entry(id).or_insert(0) += 1;
            *self.global_freq.entry(id).or_insert(0) += 1;
        }
        rs.n_recipes += 1;

        let score = rs.overlap.score_ids(ingredients).ok_or_else(|| {
            StageFailure::error(
                "stream.score",
                0,
                "extended pool missing a recipe ingredient",
            )
        })?;
        if ingredients.len() >= 2 {
            rs.scores.push(score);
        }
        Ok(score)
    }

    /// Ingest a micro-batch of resolved recipes in order, extending
    /// each touched region's overlap pool **once** for the whole batch
    /// instead of once per recipe — the dominant cost of
    /// [`StreamState::ingest_recipe`] is the O(pool²) triangle copy in
    /// [`OverlapCache::extend`], so batching it is what makes
    /// micro-batched ingestion cheaper than per-batch cold rebuilds
    /// (measured by `bench_stream`).
    ///
    /// Bit-identical to calling [`StreamState::ingest_recipe`] per
    /// recipe in the same order: overlap cells are exact intersection
    /// counts (the grow path cannot change them), and per-recipe
    /// scores are pushed into the running stats in batch order either
    /// way. Returns the number of recipes ingested.
    ///
    /// # Errors
    /// Like [`StreamState::ingest_recipe`]: every ingredient id is
    /// validated against `db` before any state mutates, so a dead id
    /// leaves the whole state untouched (stage `stream.category`).
    pub fn ingest_batch(
        &mut self,
        db: &FlavorDb,
        recipes: &[(Region, &[IngredientId])],
    ) -> Result<usize, StageFailure> {
        // Validate the whole batch up front: a dead id anywhere must
        // not half-apply the batch.
        let mut cat_deltas: Vec<[u64; 21]> = Vec::with_capacity(recipes.len());
        for (_, ingredients) in recipes {
            let mut delta = [0u64; 21];
            for (k, &id) in ingredients.iter().enumerate() {
                let ing = db.ingredient(id).map_err(|e| {
                    StageFailure::error(
                        "stream.category",
                        k,
                        format!("ingredient id {} is not usable: {e}", id.index()),
                    )
                })?;
                delta[ing.category.index()] += 1;
            }
            cat_deltas.push(delta);
        }

        // One pool extension per touched region (BTreeMap for a
        // deterministic extension order).
        let mut fresh_by_region: BTreeMap<usize, Vec<IngredientId>> = BTreeMap::new();
        for (region, ingredients) in recipes {
            let slot = region.index();
            let seen = &self.regions[slot].overlap;
            let fresh = fresh_by_region.entry(slot).or_default();
            fresh.extend(
                ingredients
                    .iter()
                    .copied()
                    .filter(|&id| seen.local_index(id).is_none()),
            );
        }
        for (slot, mut fresh) in fresh_by_region {
            fresh.sort_unstable();
            fresh.dedup();
            if fresh.is_empty() {
                continue;
            }
            let rs = &mut self.regions[slot];
            let mut pool = rs.overlap.pool().to_vec();
            pool.extend_from_slice(&fresh);
            pool.sort_unstable();
            rs.overlap = rs.overlap.extend(db, &pool)?;
        }

        // Counts and scores, in batch order.
        for ((region, ingredients), delta) in recipes.iter().zip(&cat_deltas) {
            let rs = &mut self.regions[region.index()];
            for (c, d) in rs.categories.iter_mut().zip(delta) {
                *c += d;
            }
            for &id in *ingredients {
                *rs.freq.entry(id).or_insert(0) += 1;
                *self.global_freq.entry(id).or_insert(0) += 1;
            }
            rs.n_recipes += 1;
            let score = rs.overlap.score_ids(ingredients).ok_or_else(|| {
                StageFailure::error(
                    "stream.score",
                    0,
                    "extended pool missing a recipe ingredient",
                )
            })?;
            if ingredients.len() >= 2 {
                rs.scores.push(score);
            }
        }
        Ok(recipes.len())
    }

    /// Catch up with a store: ingest recipes `from..` in store order
    /// (the arrival order the determinism contract is defined over).
    /// Returns the number of recipes ingested.
    ///
    /// # Errors
    /// First [`StageFailure`] from [`StreamState::ingest_recipe`];
    /// recipes before the failing one remain ingested.
    pub fn ingest_stored(
        &mut self,
        db: &FlavorDb,
        store: &RecipeStore,
        from: usize,
    ) -> Result<usize, StageFailure> {
        let mut n = 0;
        for r in store.recipes().skip(from) {
            self.ingest_recipe(db, r.region, r.ingredients())?;
            n += 1;
        }
        self.fed = from + n;
        Ok(n)
    }

    /// Recipes fed via [`StreamState::ingest_stored`] so far (the
    /// `from` to pass next time).
    pub fn fed(&self) -> usize {
        self.fed
    }

    /// Global ingredient → recipe-count table
    /// (= [`RecipeStore::global_frequencies`]).
    pub fn global_frequencies(&self) -> &HashMap<IngredientId, u64> {
        &self.global_freq
    }

    /// One region's incremental state.
    pub fn region(&self, region: Region) -> &RegionStream {
        &self.regions[region.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::category_counts;
    use crate::pairing::recipe_pairing_score;
    use culinaria_datagen::{generate_world, WorldConfig};

    #[test]
    fn incremental_state_matches_batch_after_every_prefix_step() {
        let w = generate_world(&WorldConfig::tiny());
        let (db, store) = (&w.flavor, &w.recipes);
        let n = store.n_recipes().min(40);
        let mut state = StreamState::new();
        let mut partial = RecipeStore::new();
        for (i, r) in store.recipes().take(n).enumerate() {
            state.ingest_recipe(db, r.region, r.ingredients()).unwrap();
            partial
                .add_recipe(&r.name, r.region, r.source, r.ingredients().to_vec())
                .unwrap();
            if i % 7 != 6 && i != n - 1 {
                continue; // full cross-check every 7th step and at the end
            }
            assert_eq!(state.global_frequencies(), &partial.global_frequencies());
            for region in partial.regions() {
                let cuisine = partial.cuisine(region);
                let rs = state.region(region);
                assert_eq!(rs.frequencies(), &cuisine.frequencies(), "step {i}");
                assert_eq!(
                    rs.category_counts(),
                    &category_counts(db, &cuisine),
                    "step {i}"
                );
                let cold = OverlapCache::for_cuisine(db, &cuisine);
                assert_eq!(rs.overlap().pool(), cold.pool(), "step {i}");
                assert_eq!(rs.overlap().tri(), cold.tri(), "step {i}");
                // Batch reference for the running stats: the same
                // accumulator fed in the same (store) order.
                let mut batch = RunningStats::new();
                for r in cuisine.recipes() {
                    if r.size() >= 2 {
                        batch.push(recipe_pairing_score(db, r.ingredients()));
                    }
                }
                assert_eq!(rs.pairing_stats(), &batch, "step {i}");
            }
        }
    }

    #[test]
    fn micro_batch_and_per_recipe_feeds_are_bit_identical() {
        let w = generate_world(&WorldConfig::tiny());
        let (db, store) = (&w.flavor, &w.recipes);
        let n = store.n_recipes().min(30);

        let mut one_by_one = StreamState::new();
        for r in store.recipes().take(n) {
            one_by_one
                .ingest_recipe(db, r.region, r.ingredients())
                .unwrap();
        }

        let mut chunked = StreamState::new();
        let mut at = 0;
        for chunk in [5usize, 12, 30] {
            let upto = chunk.min(n);
            for r in store.recipes().take(upto).skip(at) {
                chunked
                    .ingest_recipe(db, r.region, r.ingredients())
                    .unwrap();
            }
            at = upto;
        }

        assert_eq!(
            one_by_one.global_frequencies(),
            chunked.global_frequencies()
        );
        for region in store.regions() {
            let (a, b) = (one_by_one.region(region), chunked.region(region));
            assert_eq!(a.frequencies(), b.frequencies());
            assert_eq!(a.pairing_stats(), b.pairing_stats());
            assert_eq!(a.overlap().tri(), b.overlap().tri());
        }
    }

    #[test]
    fn ingest_batch_is_bit_identical_to_per_recipe_feed() {
        let w = generate_world(&WorldConfig::tiny());
        let (db, store) = (&w.flavor, &w.recipes);
        let recipes: Vec<_> = store.recipes().take(36).collect();

        let mut per_recipe = StreamState::new();
        for r in &recipes {
            per_recipe
                .ingest_recipe(db, r.region, r.ingredients())
                .unwrap();
        }

        let mut batched = StreamState::new();
        for chunk in recipes.chunks(7) {
            let refs: Vec<(Region, &[_])> =
                chunk.iter().map(|r| (r.region, r.ingredients())).collect();
            assert_eq!(batched.ingest_batch(db, &refs).unwrap(), refs.len());
        }

        assert_eq!(
            per_recipe.global_frequencies(),
            batched.global_frequencies()
        );
        for region in store.regions() {
            let (a, b) = (per_recipe.region(region), batched.region(region));
            assert_eq!(a.frequencies(), b.frequencies());
            assert_eq!(a.category_counts(), b.category_counts());
            assert_eq!(a.pairing_stats(), b.pairing_stats());
            assert_eq!(a.overlap().pool(), b.overlap().pool());
            assert_eq!(a.overlap().tri(), b.overlap().tri());
            assert_eq!(a.n_recipes(), b.n_recipes());
        }

        // A dead id anywhere in the batch leaves the state untouched.
        let before = batched.region(recipes[0].region).clone();
        let dead = [IngredientId(u32::MAX - 1)];
        let bad: Vec<(Region, &[_])> = vec![
            (recipes[0].region, recipes[0].ingredients()),
            (recipes[0].region, &dead[..]),
        ];
        assert!(batched.ingest_batch(db, &bad).is_err());
        let after = batched.region(recipes[0].region);
        assert_eq!(after.frequencies(), before.frequencies());
        assert_eq!(after.n_recipes(), before.n_recipes());
        assert_eq!(after.pairing_stats(), before.pairing_stats());
    }

    #[test]
    fn extend_matches_cold_build_and_rejects_shrink() {
        let w = generate_world(&WorldConfig::tiny());
        let db = &w.flavor;
        let all = w.recipes.cuisine(w.recipes.regions()[0]).ingredient_set();
        assert!(all.len() >= 6, "fixture too small: {}", all.len());
        let half = &all[..all.len() / 2];
        let cache = OverlapCache::build(db, half);

        let grown = cache.extend(db, &all).unwrap();
        let cold = OverlapCache::build(db, &all);
        assert_eq!(grown.pool(), cold.pool());
        assert_eq!(grown.tri(), cold.tri());

        // Same pool: pure copy, still identical.
        let same = grown.extend(db, &all).unwrap();
        assert_eq!(same.tri(), cold.tri());

        // Shrinking is a caller bug.
        assert!(grown.extend(db, half).is_err());
    }

    #[test]
    fn dead_ingredient_leaves_state_untouched() {
        let w = generate_world(&WorldConfig::tiny());
        let db = &w.flavor;
        let r = w.recipes.recipes().next().unwrap();
        let mut state = StreamState::new();
        state.ingest_recipe(db, r.region, r.ingredients()).unwrap();
        let before = state.region(r.region).clone();

        let dead = IngredientId(u32::MAX - 1);
        assert!(state
            .ingest_recipe(db, r.region, &[dead, r.ingredients()[0]])
            .is_err());
        let after = state.region(r.region);
        assert_eq!(after.frequencies(), before.frequencies());
        assert_eq!(after.n_recipes(), before.n_recipes());
        assert_eq!(after.pairing_stats(), before.pairing_stats());
    }
}
