//! Flavor transformation under cooking — the paper's §V question
//! *"How to incorporate transformation of flavor in the process of
//! cooking?"*.
//!
//! A simple, testable model with the two first-order effects food
//! chemistry reports:
//!
//! * **volatile loss** — heat drives off a method-dependent fraction of
//!   a profile's molecules (deterministic per (molecule, method), so
//!   the same ingredient cooks the same way everywhere);
//! * **signature generation** — browning methods add their own shared
//!   molecules (Maillard pyrazines for roasting/frying, smoke phenols
//!   for smoking, fermentation acids for fermenting).
//!
//! Because signature molecules are *shared* across everything cooked
//! the same way, cooking homogenizes flavor: pairing scores among
//! same-method ingredients rise — a mechanism the pairing literature
//! discusses and this module makes measurable.

use culinaria_flavordb::{FlavorDb, FlavorProfile, IngredientId, MoleculeId};

/// A cooking method and its flavor-transformation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CookingMethod {
    /// No transformation.
    Raw,
    /// Wet heat: strong volatile loss, no browning signature.
    Boiled,
    /// Dry heat: moderate loss + Maillard signature.
    Roasted,
    /// Hot fat: mild loss + Maillard signature.
    Fried,
    /// Smoke: mild loss + phenolic smoke signature.
    Smoked,
    /// Microbial transformation: mild loss + fermentation signature.
    Fermented,
}

impl CookingMethod {
    /// All methods.
    pub const ALL: [CookingMethod; 6] = [
        CookingMethod::Raw,
        CookingMethod::Boiled,
        CookingMethod::Roasted,
        CookingMethod::Fried,
        CookingMethod::Smoked,
        CookingMethod::Fermented,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CookingMethod::Raw => "raw",
            CookingMethod::Boiled => "boiled",
            CookingMethod::Roasted => "roasted",
            CookingMethod::Fried => "fried",
            CookingMethod::Smoked => "smoked",
            CookingMethod::Fermented => "fermented",
        }
    }

    /// Fraction of the raw profile lost to heat.
    pub fn volatile_loss(self) -> f64 {
        match self {
            CookingMethod::Raw => 0.0,
            CookingMethod::Boiled => 0.35,
            CookingMethod::Roasted => 0.20,
            CookingMethod::Fried => 0.15,
            CookingMethod::Smoked => 0.10,
            CookingMethod::Fermented => 0.10,
        }
    }

    /// Names of the molecules the method generates.
    fn signature_names(self) -> &'static [&'static str] {
        match self {
            CookingMethod::Raw | CookingMethod::Boiled => &[],
            CookingMethod::Roasted => &[
                "maillard pyrazine",
                "maillard furanone",
                "roast melanoidin note",
            ],
            CookingMethod::Fried => &["maillard pyrazine", "fried fat aldehyde"],
            CookingMethod::Smoked => &["smoke guaiacol", "smoke syringol"],
            CookingMethod::Fermented => &["ferment lactic acid", "ferment ester"],
        }
    }
}

impl std::fmt::Display for CookingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A kitchen: a flavor database extended with cooking-signature
/// molecules, able to cook any ingredient's profile.
#[derive(Debug, Clone)]
pub struct Kitchen {
    db: FlavorDb,
    /// Signature molecule ids per method, index-aligned with
    /// [`CookingMethod::ALL`].
    signatures: Vec<Vec<MoleculeId>>,
}

/// Deterministic per-(molecule, method) retention decision.
fn survives(m: MoleculeId, method: CookingMethod, loss: f64) -> bool {
    // SplitMix-style hash of (molecule, method) → uniform in [0, 1).
    let mut h = u64::from(m.0) ^ ((method as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h as f64 / u64::MAX as f64) >= loss
}

impl Kitchen {
    /// Extend a flavor database with the cooking-signature molecules.
    /// The input database is cloned; signature molecules are appended
    /// (re-using existing entries when names collide).
    pub fn new(db: &FlavorDb) -> Kitchen {
        let mut db = db.clone();
        let signatures = CookingMethod::ALL
            .iter()
            .map(|m| {
                m.signature_names()
                    .iter()
                    .map(|name| match db.molecule_by_name(name) {
                        Some(id) => id,
                        None => db
                            .add_molecule(name, &["cooked"])
                            .expect("fresh signature molecule"),
                    })
                    .collect()
            })
            .collect();
        Kitchen { db, signatures }
    }

    /// The extended database (raw profiles unchanged).
    pub fn db(&self) -> &FlavorDb {
        &self.db
    }

    /// Cook one profile: volatile loss then signature union.
    pub fn cook_profile(&self, profile: &FlavorProfile, method: CookingMethod) -> FlavorProfile {
        let loss = method.volatile_loss();
        let mut kept: Vec<MoleculeId> = profile
            .molecules()
            .iter()
            .copied()
            .filter(|&m| survives(m, method, loss))
            .collect();
        kept.extend_from_slice(&self.signatures[method as usize]);
        FlavorProfile::new(kept)
    }

    /// Cook one ingredient's profile.
    pub fn cook(&self, ingredient: IngredientId, method: CookingMethod) -> FlavorProfile {
        let raw = &self
            .db
            .ingredient(ingredient)
            .expect("live ingredient")
            .profile;
        self.cook_profile(raw, method)
    }

    /// Pairing score of a *prepared* recipe: each ingredient carries
    /// its own cooking method.
    pub fn prepared_pairing_score(&self, prepared: &[(IngredientId, CookingMethod)]) -> f64 {
        let n = prepared.len();
        if n < 2 {
            return 0.0;
        }
        let cooked: Vec<FlavorProfile> = prepared
            .iter()
            .map(|&(id, method)| self.cook(id, method))
            .collect();
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += cooked[i].shared_count(&cooked[j]);
            }
        }
        (2.0 * total as f64) / (n as f64 * (n as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::recipe_pairing_score;
    use culinaria_flavordb::generator::{generate_flavor_db, GeneratorConfig};

    fn kitchen() -> Kitchen {
        Kitchen::new(&generate_flavor_db(&GeneratorConfig::tiny(11)))
    }

    #[test]
    fn raw_is_identity() {
        let k = kitchen();
        for ing in k.db().ingredient_ids().take(10) {
            let raw = &k.db().ingredient(ing).expect("live").profile;
            assert_eq!(&k.cook(ing, CookingMethod::Raw), raw);
        }
    }

    #[test]
    fn cooking_is_deterministic() {
        let k = kitchen();
        let ing = k.db().ingredient_ids().next().expect("non-empty db");
        assert_eq!(
            k.cook(ing, CookingMethod::Boiled),
            k.cook(ing, CookingMethod::Boiled)
        );
    }

    #[test]
    fn boiling_loses_volatiles_without_signature() {
        let k = kitchen();
        let mut lost_total = 0usize;
        let mut raw_total = 0usize;
        for ing in k.db().ingredient_ids() {
            let raw = k.db().ingredient(ing).expect("live").profile.clone();
            let boiled = k.cook(ing, CookingMethod::Boiled);
            assert!(boiled.len() <= raw.len());
            // Everything kept comes from the raw profile (no signature).
            for &m in boiled.molecules() {
                assert!(raw.contains(m));
            }
            raw_total += raw.len();
            lost_total += raw.len() - boiled.len();
        }
        let loss = lost_total as f64 / raw_total as f64;
        assert!(
            (loss - 0.35).abs() < 0.08,
            "aggregate boil loss {loss}, expected ≈ 0.35"
        );
    }

    #[test]
    fn browning_methods_add_their_signature() {
        let k = kitchen();
        let ing = k.db().ingredient_ids().next().expect("non-empty db");
        let roasted = k.cook(ing, CookingMethod::Roasted);
        let pyrazine = k
            .db()
            .molecule_by_name("maillard pyrazine")
            .expect("kitchen interned the signature");
        assert!(roasted.contains(pyrazine));
        let smoked = k.cook(ing, CookingMethod::Smoked);
        let guaiacol = k.db().molecule_by_name("smoke guaiacol").expect("interned");
        assert!(smoked.contains(guaiacol));
        assert!(!roasted.contains(guaiacol));
    }

    #[test]
    fn same_method_browning_homogenizes_pairing() {
        let k = kitchen();
        let ids: Vec<IngredientId> = k.db().ingredient_ids().take(6).collect();
        let raw_score = recipe_pairing_score(k.db(), &ids);
        let roasted: Vec<(IngredientId, CookingMethod)> =
            ids.iter().map(|&i| (i, CookingMethod::Roasted)).collect();
        let roasted_score = k.prepared_pairing_score(&roasted);
        assert!(
            roasted_score > raw_score,
            "roasting should homogenize: {roasted_score} <= {raw_score}"
        );
    }

    #[test]
    fn mixed_methods_share_less_than_uniform_browning() {
        let k = kitchen();
        let ids: Vec<IngredientId> = k.db().ingredient_ids().take(6).collect();
        let uniform: Vec<_> = ids.iter().map(|&i| (i, CookingMethod::Roasted)).collect();
        let mixed: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(k_, &i)| {
                let m = if k_ % 2 == 0 {
                    CookingMethod::Roasted
                } else {
                    CookingMethod::Smoked
                };
                (i, m)
            })
            .collect();
        assert!(k.prepared_pairing_score(&uniform) > k.prepared_pairing_score(&mixed));
    }

    #[test]
    fn prepared_score_degenerate() {
        let k = kitchen();
        let ing = k.db().ingredient_ids().next().expect("non-empty db");
        assert_eq!(k.prepared_pairing_score(&[]), 0.0);
        assert_eq!(
            k.prepared_pairing_score(&[(ing, CookingMethod::Roasted)]),
            0.0
        );
    }

    #[test]
    fn kitchen_reuses_existing_molecule_names() {
        let db = generate_flavor_db(&GeneratorConfig::tiny(12));
        let n_before = db.n_molecules();
        let k1 = Kitchen::new(&db);
        // Building a kitchen from an already-extended db adds nothing.
        let k2 = Kitchen::new(k1.db());
        assert_eq!(k2.db().n_molecules(), k1.db().n_molecules());
        assert!(k1.db().n_molecules() > n_before);
    }
}
