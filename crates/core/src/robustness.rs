//! Robustness analysis — the paper's first open question (§V): *"How
//! robust are the patterns to changes in recipes data and flavor
//! profiles?"*
//!
//! Two perturbation protocols:
//!
//! * **Recipe subsampling** ([`subsample_robustness`]) — re-run the
//!   pairing z-score on random fractions of the cuisine's recipes;
//! * **Profile dilution** ([`profile_robustness`]) — randomly drop each
//!   flavor molecule from every profile with probability `1 − keep`,
//!   rebuild the pipeline, re-score.
//!
//! Both report the distribution of z-scores across trials and the
//! fraction of trials preserving the original pairing sign — the
//! *sign stability*, which is the paper-level claim under test.
//!
//! Each trial draws from its own derived seed, so the trial loop fans
//! over the shared worker pool (`mc.n_threads` wide) with the inner
//! Monte-Carlo forced serial; the pairing engine is thread-invariant,
//! so every trial z — and hence the whole report — is identical for
//! any thread count.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use culinaria_flavordb::{FlavorDb, FlavorProfile};
use culinaria_recipedb::{Cuisine, Region};
use culinaria_stats::pool;
use culinaria_stats::rng::derive_seed;
use culinaria_stats::zscore::z_score_of_mean;

use crate::monte_carlo::{run_null_model, MonteCarloConfig};
use crate::null_models::{CuisineSampler, NullModel};
use crate::pairing::OverlapCache;

/// Result of one robustness experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// The region analyzed.
    pub region: Region,
    /// z-score on the unperturbed cuisine.
    pub baseline_z: f64,
    /// z-scores across perturbation trials.
    pub trial_z: Vec<f64>,
    /// Fraction of trials whose z shares the baseline's sign.
    pub sign_stability: f64,
}

impl RobustnessReport {
    fn from_trials(region: Region, baseline_z: f64, trial_z: Vec<f64>) -> RobustnessReport {
        let stable = trial_z
            .iter()
            .filter(|z| z.signum() == baseline_z.signum())
            .count();
        let sign_stability = if trial_z.is_empty() {
            0.0
        } else {
            stable as f64 / trial_z.len() as f64
        };
        RobustnessReport {
            region,
            baseline_z,
            trial_z,
            sign_stability,
        }
    }

    /// Mean trial z.
    pub fn mean_trial_z(&self) -> f64 {
        if self.trial_z.is_empty() {
            return f64::NAN;
        }
        self.trial_z.iter().sum::<f64>() / self.trial_z.len() as f64
    }
}

/// z-score of one cuisine against the Random null (shared helper).
fn z_against_random(db: &FlavorDb, cuisine: &Cuisine<'_>, mc: &MonteCarloConfig) -> Option<f64> {
    let sampler = CuisineSampler::build(db, cuisine)?;
    let cache = OverlapCache::for_cuisine(db, cuisine);
    let observed = cache.mean_cuisine_score(cuisine)?;
    let null = run_null_model(&cache, &sampler, NullModel::Random, mc)?;
    z_score_of_mean(observed, &null)
}

/// Recipe-subsampling robustness: `n_trials` random subsets of
/// `fraction` of the recipes, each re-analyzed from scratch.
///
/// Returns `None` when the baseline cuisine has no pairing signal.
pub fn subsample_robustness(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    fraction: f64,
    n_trials: usize,
    mc: &MonteCarloConfig,
    seed: u64,
) -> Option<RobustnessReport> {
    let baseline_z = z_against_random(db, cuisine, mc)?;
    let recipes = cuisine.recipes();
    let keep = ((recipes.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize).max(2);

    // One trial per task; the inner Monte-Carlo runs serial (it is
    // thread-invariant, so the values match any inner width).
    let inner = MonteCarloConfig {
        n_threads: 1,
        ..*mc
    };
    let trials = pool::run(
        mc.n_threads,
        n_trials,
        || (),
        |(), t| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, t as u64));
            let idx = culinaria_stats::sampling::sample_without_replacement(
                recipes.len(),
                keep,
                &mut rng,
            );
            let subset: Vec<_> = idx.iter().map(|&i| recipes[i]).collect();
            let sub = Cuisine::new(cuisine.region(), subset);
            z_against_random(db, &sub, &inner)
        },
    );
    Some(RobustnessReport::from_trials(
        cuisine.region(),
        baseline_z,
        trials.into_iter().flatten().collect(),
    ))
}

/// Profile-dilution robustness: every molecule of every profile is kept
/// with probability `keep`; the diluted database is re-analyzed.
///
/// Returns `None` when the baseline cuisine has no pairing signal.
pub fn profile_robustness(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    keep: f64,
    n_trials: usize,
    mc: &MonteCarloConfig,
    seed: u64,
) -> Option<RobustnessReport> {
    let baseline_z = z_against_random(db, cuisine, mc)?;
    let keep = keep.clamp(0.0, 1.0);

    let inner = MonteCarloConfig {
        n_threads: 1,
        ..*mc
    };
    let trials = pool::run(
        mc.n_threads,
        n_trials,
        || (),
        |(), t| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed ^ 0xD11, t as u64));
            let diluted = db.map_profiles(|ing| {
                let kept: Vec<_> = ing
                    .profile
                    .molecules()
                    .iter()
                    .copied()
                    .filter(|_| rng.random::<f64>() < keep)
                    .collect();
                FlavorProfile::new(kept)
            });
            z_against_random(&diluted, cuisine, &inner)
        },
    );
    Some(RobustnessReport::from_trials(
        cuisine.region(),
        baseline_z,
        trials.into_iter().flatten().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    fn mc() -> MonteCarloConfig {
        MonteCarloConfig {
            n_recipes: 1500,
            seed: 3,
            n_threads: 2,
        }
    }

    #[test]
    fn subsampling_preserves_sign_for_strong_regions() {
        let world = generate_world(&WorldConfig::tiny());
        let cuisine = world.recipes.cuisine(Region::Italy);
        let report = subsample_robustness(&world.flavor, &cuisine, 0.6, 6, &mc(), 1)
            .expect("baseline exists");
        assert_eq!(report.trial_z.len(), 6);
        assert!(report.baseline_z > 0.0);
        assert!(
            report.sign_stability >= 0.8,
            "stability {}",
            report.sign_stability
        );
        assert!(report.mean_trial_z().is_finite());
    }

    #[test]
    fn profile_dilution_preserves_sign_at_high_keep() {
        let world = generate_world(&WorldConfig::tiny());
        let cuisine = world.recipes.cuisine(Region::Italy);
        let report =
            profile_robustness(&world.flavor, &cuisine, 0.8, 5, &mc(), 2).expect("baseline exists");
        assert!(
            report.sign_stability >= 0.8,
            "stability {}",
            report.sign_stability
        );
    }

    #[test]
    fn zero_keep_destroys_signal() {
        let world = generate_world(&WorldConfig::tiny());
        let cuisine = world.recipes.cuisine(Region::Italy);
        // With every molecule dropped, all scores are 0 and the null is
        // degenerate: no trial z can be computed.
        let report =
            profile_robustness(&world.flavor, &cuisine, 0.0, 2, &mc(), 3).expect("baseline exists");
        assert!(report.trial_z.is_empty());
        assert_eq!(report.sign_stability, 0.0);
    }

    #[test]
    fn reports_identical_for_any_thread_count() {
        let world = generate_world(&WorldConfig::tiny());
        let cuisine = world.recipes.cuisine(Region::Italy);
        let at = |threads: usize| MonteCarloConfig {
            n_threads: threads,
            ..mc()
        };
        let serial = subsample_robustness(&world.flavor, &cuisine, 0.6, 4, &at(1), 7).unwrap();
        for threads in [0, 2, 8] {
            let parallel =
                subsample_robustness(&world.flavor, &cuisine, 0.6, 4, &at(threads), 7).unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
        let serial = profile_robustness(&world.flavor, &cuisine, 0.8, 3, &at(1), 7).unwrap();
        for threads in [0, 2, 8] {
            let parallel =
                profile_robustness(&world.flavor, &cuisine, 0.8, 3, &at(threads), 7).unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn subsample_fraction_clamped() {
        let world = generate_world(&WorldConfig::tiny());
        let cuisine = world.recipes.cuisine(Region::Korea);
        let report = subsample_robustness(&world.flavor, &cuisine, 5.0, 2, &mc(), 4)
            .expect("baseline exists");
        // fraction > 1 keeps every recipe; each trial analyzes the same
        // cuisine (in shuffled order), so z agrees with the baseline up
        // to Monte-Carlo noise and certainly in sign.
        assert_eq!(report.sign_stability, 1.0);
        for z in &report.trial_z {
            let rel = (z - report.baseline_z).abs() / report.baseline_z.abs();
            assert!(
                rel < 0.5,
                "trial z {z} far from baseline {}",
                report.baseline_z
            );
        }
    }
}
