//! Cuisine classification from ingredient lists.
//!
//! If culinary fingerprints are real (the paper's premise), a recipe's
//! ingredient set should identify its cuisine. This module provides a
//! multinomial naive-Bayes classifier over per-cuisine ingredient-usage
//! distributions — a quantitative test of fingerprint strength and a
//! practical tool (tag unlabelled scraped recipes, the kind of task the
//! paper's corpus construction needed).
//!
//! Laplace smoothing over the global vocabulary keeps unseen
//! ingredients finite; priors follow cuisine sizes, matching the
//! heavily imbalanced Table 1.

use std::collections::HashMap;

use culinaria_flavordb::IngredientId;
use culinaria_recipedb::{Recipe, RecipeStore, Region};

/// A trained cuisine classifier.
#[derive(Debug, Clone)]
pub struct CuisineClassifier {
    regions: Vec<Region>,
    /// ln P(region).
    log_priors: Vec<f64>,
    /// Per region: ingredient → ln P(ingredient | region).
    log_probs: Vec<HashMap<IngredientId, f64>>,
    /// Per region: ln-probability of an ingredient never seen there.
    log_unseen: Vec<f64>,
}

impl CuisineClassifier {
    /// Train on every recipe of the store.
    pub fn train(store: &RecipeStore) -> CuisineClassifier {
        Self::train_filtered(store, |_| true)
    }

    /// Train on the recipes accepted by `keep` (e.g. an even/odd split
    /// for held-out evaluation).
    pub fn train_filtered(
        store: &RecipeStore,
        mut keep: impl FnMut(&Recipe) -> bool,
    ) -> CuisineClassifier {
        // Global vocabulary size for Laplace smoothing.
        let vocab = store.n_distinct_ingredients().max(1);
        let mut regions = Vec::new();
        let mut log_priors = Vec::new();
        let mut log_probs = Vec::new();
        let mut log_unseen = Vec::new();

        let mut region_counts: Vec<(Region, HashMap<IngredientId, u64>, u64, u64)> = Vec::new();
        for region in store.regions() {
            let mut counts: HashMap<IngredientId, u64> = HashMap::new();
            let mut usage_total = 0u64;
            let mut n_recipes = 0u64;
            for &rid in store.region_recipe_ids(region) {
                let recipe = store.recipe(rid).expect("live id");
                if !keep(recipe) {
                    continue;
                }
                n_recipes += 1;
                for &ing in recipe.ingredients() {
                    *counts.entry(ing).or_insert(0) += 1;
                    usage_total += 1;
                }
            }
            if n_recipes > 0 {
                region_counts.push((region, counts, usage_total, n_recipes));
            }
        }
        let total_recipes: u64 = region_counts.iter().map(|(_, _, _, n)| n).sum();

        for (region, counts, usage_total, n_recipes) in region_counts {
            regions.push(region);
            log_priors.push((n_recipes as f64 / total_recipes as f64).ln());
            let denom = usage_total as f64 + vocab as f64;
            let probs: HashMap<IngredientId, f64> = counts
                .into_iter()
                .map(|(ing, c)| (ing, ((c as f64 + 1.0) / denom).ln()))
                .collect();
            log_probs.push(probs);
            log_unseen.push((1.0 / denom).ln());
        }

        CuisineClassifier {
            regions,
            log_priors,
            log_probs,
            log_unseen,
        }
    }

    /// Regions the classifier knows (those with training recipes).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Log-posterior score of each region for an ingredient list,
    /// sorted best first.
    pub fn scores(&self, ingredients: &[IngredientId]) -> Vec<(Region, f64)> {
        let mut out: Vec<(Region, f64)> = self
            .regions
            .iter()
            .enumerate()
            .map(|(k, &region)| {
                let mut score = self.log_priors[k];
                for ing in ingredients {
                    score += self.log_probs[k]
                        .get(ing)
                        .copied()
                        .unwrap_or(self.log_unseen[k]);
                }
                (region, score)
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The most likely region. `None` when untrained.
    pub fn predict(&self, ingredients: &[IngredientId]) -> Option<Region> {
        self.scores(ingredients).first().map(|&(r, _)| r)
    }

    /// Evaluate on the recipes of `store` accepted by `keep`: returns
    /// `(correct, total)` and the per-region confusion counts
    /// `confusion[true][predicted]`.
    pub fn evaluate(
        &self,
        store: &RecipeStore,
        mut keep: impl FnMut(&Recipe) -> bool,
    ) -> Evaluation {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut confusion = vec![[0u32; 22]; 22];
        for recipe in store.recipes() {
            if !keep(recipe) {
                continue;
            }
            let Some(predicted) = self.predict(recipe.ingredients()) else {
                continue;
            };
            total += 1;
            if predicted == recipe.region {
                correct += 1;
            }
            confusion[recipe.region.index()][predicted.index()] += 1;
        }
        Evaluation {
            correct,
            total,
            confusion,
        }
    }
}

/// Classifier evaluation result.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Correct top-1 predictions.
    pub correct: usize,
    /// Recipes evaluated.
    pub total: usize,
    /// `confusion[true_region][predicted_region]`.
    pub confusion: Vec<[u32; 22]>,
}

impl Evaluation {
    /// Top-1 accuracy (0 when nothing was evaluated).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Per-region recall, `None` for regions without test recipes.
    pub fn recall(&self, region: Region) -> Option<f64> {
        let row = &self.confusion[region.index()];
        let total: u32 = row.iter().sum();
        (total > 0).then(|| f64::from(row[region.index()]) / f64::from(total))
    }

    /// The most confused (true → predicted) off-diagonal pairs, by
    /// count, descending.
    pub fn top_confusions(&self, k: usize) -> Vec<(Region, Region, u32)> {
        let mut pairs = Vec::new();
        for (t, row) in self.confusion.iter().enumerate() {
            for (p, &count) in row.iter().enumerate() {
                if t != p && count > 0 {
                    pairs.push((
                        Region::from_index(t).expect("index < 22"),
                        Region::from_index(p).expect("index < 22"),
                        count,
                    ));
                }
            }
        }
        pairs.sort_by_key(|&(_, _, count)| std::cmp::Reverse(count));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culinaria_datagen::{generate_world, WorldConfig};

    fn world() -> culinaria_datagen::World {
        generate_world(&WorldConfig::tiny())
    }

    /// Even/odd split keyed on the recipe id.
    fn is_even(r: &Recipe) -> bool {
        r.id.0.is_multiple_of(2)
    }

    #[test]
    fn heldout_accuracy_beats_chance_by_far() {
        let w = world();
        let clf = CuisineClassifier::train_filtered(&w.recipes, is_even);
        let eval = clf.evaluate(&w.recipes, |r| !is_even(r));
        assert!(eval.total > 100);
        // Chance is ~1/22 ≈ 4.5% (weighted prior baseline higher, but
        // well under 40%). Fingerprints should push way past that.
        assert!(
            eval.accuracy() > 0.4,
            "held-out accuracy {:.3}",
            eval.accuracy()
        );
    }

    #[test]
    fn training_recipes_classified_well() {
        let w = world();
        let clf = CuisineClassifier::train(&w.recipes);
        let eval = clf.evaluate(&w.recipes, |_| true);
        assert!(
            eval.accuracy() > 0.5,
            "train accuracy {:.3}",
            eval.accuracy()
        );
        assert_eq!(clf.regions().len(), 22);
    }

    #[test]
    fn scores_are_sorted_and_complete() {
        let w = world();
        let clf = CuisineClassifier::train(&w.recipes);
        let recipe = w.recipes.recipes().next().expect("non-empty world");
        let scores = clf.scores(recipe.ingredients());
        assert_eq!(scores.len(), 22);
        for pair in scores.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(clf.predict(recipe.ingredients()), Some(scores[0].0));
    }

    #[test]
    fn unseen_ingredients_do_not_crash() {
        let w = world();
        let clf = CuisineClassifier::train(&w.recipes);
        let ghost = [IngredientId(u32::MAX - 7)];
        let scores = clf.scores(&ghost);
        assert_eq!(scores.len(), 22);
        assert!(scores.iter().all(|(_, s)| s.is_finite()));
    }

    #[test]
    fn empty_store_yields_untrained_classifier() {
        let store = RecipeStore::new();
        let clf = CuisineClassifier::train(&store);
        assert!(clf.regions().is_empty());
        assert!(clf.predict(&[IngredientId(0)]).is_none());
        let eval = clf.evaluate(&store, |_| true);
        assert_eq!(eval.accuracy(), 0.0);
    }

    #[test]
    fn evaluation_reports_confusions_and_recall() {
        let w = world();
        let clf = CuisineClassifier::train_filtered(&w.recipes, is_even);
        let eval = clf.evaluate(&w.recipes, |r| !is_even(r));
        // Recall defined for every region with held-out recipes.
        let mut defined = 0;
        for region in Region::ALL {
            if let Some(r) = eval.recall(region) {
                assert!((0.0..=1.0).contains(&r));
                defined += 1;
            }
        }
        assert!(defined >= 20);
        // Confusion counts sum to total.
        let sum: u32 = eval.confusion.iter().flatten().sum();
        assert_eq!(sum as usize, eval.total);
        let _ = eval.top_confusions(5);
    }
}
