//! The frozen pre-kernel n-tuple walker — the parity reference for the
//! bitset k-way intersection kernel in [`crate::ntuple`], in the same
//! role `culinaria_text::legacy` plays for the aliasing trie.
//!
//! This module is the subset enumeration exactly as first written:
//! every k-subset materializes its member [`FlavorProfile`]s and
//! intersects them k ways from scratch (allocating intermediate
//! profiles), and the Monte-Carlo null ensemble runs serially on a
//! single RNG stream. **Do not optimize it** — `bench_ntuple` and the
//! property tests hold the optimized kernel bit-identical to this
//! implementation, so it doubles as an independently-written
//! specification.
//!
//! For a recipe R with n ≥ k ingredients both implementations compute
//!
//! ```text
//! N_s^(k)(R) = 1 / C(n, k) · Σ_{S ⊆ R, |S| = k} |∩_{i∈S} F_i|
//! ```
//!
//! the mean number of flavor compounds shared by *all* members of a
//! k-subset. k = 2 recovers the paper's pairwise N_s exactly.

use culinaria_flavordb::{FlavorDb, FlavorProfile, IngredientId};
use culinaria_recipedb::Cuisine;
use culinaria_stats::rng::derive_seed;
use culinaria_stats::{NullEnsemble, RunningStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::null_models::{CuisineSampler, NullModel};

/// Visit all k-subsets of `0..n` (lexicographic), calling `f` with the
/// current index buffer.
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    if k == 0 || k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Size of the k-wise intersection of the given profiles (early exit on
/// empty running intersection).
pub fn kwise_shared(profiles: &[&FlavorProfile]) -> usize {
    match profiles.len() {
        0 => 0,
        1 => profiles[0].len(),
        2 => profiles[0].shared_count(profiles[1]),
        _ => {
            let mut acc = profiles[0].intersection(profiles[1]);
            for p in &profiles[2..] {
                if acc.is_empty() {
                    return 0;
                }
                acc = acc.intersection(p);
            }
            acc.len()
        }
    }
}

/// N_s^(k) of a recipe. 0 when the recipe has fewer than k ingredients
/// or k < 2.
pub fn recipe_ktuple_score(db: &FlavorDb, ingredients: &[IngredientId], k: usize) -> f64 {
    let n = ingredients.len();
    if k < 2 || n < k {
        return 0.0;
    }
    let profiles: Vec<&FlavorProfile> = ingredients
        .iter()
        .map(|&id| &db.ingredient(id).expect("live ingredient").profile)
        .collect();
    let mut total = 0usize;
    let mut count = 0usize;
    let mut subset: Vec<&FlavorProfile> = Vec::with_capacity(k);
    for_each_combination(n, k, |idx| {
        subset.clear();
        subset.extend(idx.iter().map(|&i| profiles[i]));
        total += kwise_shared(&subset);
        count += 1;
    });
    total as f64 / count as f64
}

/// Mean N_s^(k) over a cuisine's recipes of size ≥ k.
pub fn mean_cuisine_ktuple_score(db: &FlavorDb, cuisine: &Cuisine<'_>, k: usize) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for r in cuisine.recipes() {
        if r.size() >= k {
            total += recipe_ktuple_score(db, r.ingredients(), k);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Scores k-tuple sharing over *local pool indices* emitted by a
/// [`CuisineSampler`], for null-model comparison at order k.
#[derive(Debug, Clone)]
pub struct KTupleScorer<'a> {
    profiles: Vec<&'a FlavorProfile>,
    k: usize,
}

impl<'a> KTupleScorer<'a> {
    /// Build over the same pool ordering as
    /// [`CuisineSampler::build`] / `OverlapCache::for_cuisine` (the
    /// cuisine's sorted ingredient set).
    pub fn for_cuisine(db: &'a FlavorDb, cuisine: &Cuisine<'_>, k: usize) -> KTupleScorer<'a> {
        let profiles = cuisine
            .ingredient_set()
            .into_iter()
            .map(|id| &db.ingredient(id).expect("live ingredient").profile)
            .collect();
        KTupleScorer { profiles, k }
    }

    /// N_s^(k) over local pool positions.
    pub fn score_local(&self, locals: &[u32]) -> f64 {
        let n = locals.len();
        if self.k < 2 || n < self.k {
            return 0.0;
        }
        let mut total = 0usize;
        let mut count = 0usize;
        let mut subset: Vec<&FlavorProfile> = Vec::with_capacity(self.k);
        for_each_combination(n, self.k, |idx| {
            subset.clear();
            subset.extend(idx.iter().map(|&i| self.profiles[locals[i] as usize]));
            total += kwise_shared(&subset);
            count += 1;
        });
        total as f64 / count as f64
    }
}

/// Monte-Carlo null ensemble of N_s^(k) for one cuisine and model
/// (single-threaded — the k-tuple analysis runs at far smaller
/// `n_recipes` than the pairwise one).
pub fn ktuple_null_ensemble(
    scorer: &KTupleScorer<'_>,
    sampler: &CuisineSampler,
    model: NullModel,
    n_recipes: usize,
    seed: u64,
) -> Option<NullEnsemble> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, model.index() as u64));
    let mut stats = RunningStats::new();
    for _ in 0..n_recipes {
        let recipe = sampler.generate(model, &mut rng);
        stats.push(scorer.score_local(&recipe));
    }
    NullEnsemble::from_running(&stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::recipe_pairing_score;
    use culinaria_flavordb::{Category, MoleculeId};
    use culinaria_recipedb::{RecipeStore, Region, Source};

    fn fixture() -> (FlavorDb, Vec<IngredientId>) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(12);
        // a, b, c all share molecule 0; pairs share extra molecules.
        let a = db
            .add_ingredient(
                "a",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(1), MoleculeId(2)],
            )
            .unwrap();
        let b = db
            .add_ingredient(
                "b",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(1), MoleculeId(3)],
            )
            .unwrap();
        let c = db
            .add_ingredient(
                "c",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(2), MoleculeId(3)],
            )
            .unwrap();
        let d = db
            .add_ingredient("d", Category::Meat, vec![MoleculeId(9)])
            .unwrap();
        (db, vec![a, b, c, d])
    }

    #[test]
    fn combinations_enumerate_fully() {
        let mut seen = Vec::new();
        for_each_combination(4, 2, |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 1]);
        assert_eq!(seen[5], vec![2, 3]);
        let mut tri = 0;
        for_each_combination(5, 3, |_| tri += 1);
        assert_eq!(tri, 10);
        // Degenerate cases.
        let mut none = 0;
        for_each_combination(3, 0, |_| none += 1);
        for_each_combination(2, 3, |_| none += 1);
        assert_eq!(none, 0);
        // k == n yields exactly one subset.
        let mut one = 0;
        for_each_combination(3, 3, |idx| {
            assert_eq!(idx, &[0, 1, 2]);
            one += 1;
        });
        assert_eq!(one, 1);
    }

    #[test]
    fn k2_matches_pairwise_score() {
        let (db, ids) = fixture();
        for subset in [&ids[0..2], &ids[0..3], &ids[0..4]] {
            let pairwise = recipe_pairing_score(&db, subset);
            let k2 = recipe_ktuple_score(&db, subset, 2);
            assert!((pairwise - k2).abs() < 1e-12);
        }
    }

    #[test]
    fn triple_score_known_value() {
        let (db, ids) = fixture();
        // (a,b,c): only molecule 0 is in all three → N_s^(3) = 1.
        let s = recipe_ktuple_score(&db, &ids[0..3], 3);
        assert!((s - 1.0).abs() < 1e-12);
        // (a,b,c,d): C(4,3)=4 triples; only (a,b,c) shares (1), others
        // include d and share 0 → 1/4.
        let s = recipe_ktuple_score(&db, &ids, 3);
        assert!((s - 0.25).abs() < 1e-12);
        // Quadruple over (a,b,c,d): ∩ is empty → 0.
        assert_eq!(recipe_ktuple_score(&db, &ids, 4), 0.0);
    }

    #[test]
    fn degenerate_k_and_small_recipes() {
        let (db, ids) = fixture();
        assert_eq!(recipe_ktuple_score(&db, &ids[0..2], 3), 0.0);
        assert_eq!(recipe_ktuple_score(&db, &ids, 1), 0.0);
        assert_eq!(recipe_ktuple_score(&db, &[], 2), 0.0);
    }

    #[test]
    fn cuisine_mean_and_scorer_agree() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, ids[0..3].to_vec())
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, ids.clone())
            .unwrap();
        let cuisine = store.cuisine(Region::Italy);
        let mean = mean_cuisine_ktuple_score(&db, &cuisine, 3);
        assert!((mean - (1.0 + 0.25) / 2.0).abs() < 1e-12);

        let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
        // Local pool is sorted ids = [a, b, c, d] at positions 0..4.
        let s = scorer.score_local(&[0, 1, 2]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_ensemble_produces_statistics() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, ids[0..3].to_vec())
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, ids.clone())
            .unwrap();
        let cuisine = store.cuisine(Region::Italy);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
        let e = ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, 2000, 1).unwrap();
        assert_eq!(e.n, 2000);
        assert!(e.mean >= 0.0);
        // Determinism.
        let e2 = ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, 2000, 1).unwrap();
        assert_eq!(e.mean.to_bits(), e2.mean.to_bits());
    }
}
