//! Higher-order flavor sharing: the paper's proposed extension from
//! ingredient *pairs* to triples and quadruples (§V: "What are the
//! patterns at higher order n-tuples?").
//!
//! For a recipe R with n ≥ k ingredients we define
//!
//! ```text
//! N_s^(k)(R) = 1 / C(n, k) · Σ_{S ⊆ R, |S| = k} |∩_{i∈S} F_i|
//! ```
//!
//! the mean number of flavor compounds shared by *all* members of a
//! k-subset. k = 2 recovers the paper's pairwise N_s exactly.
//!
//! The implementation routes every subset walk through the packed-u64
//! bitset kernel: a [`KTupleKernel`] packs the pool's profiles over
//! their own [`culinaria_flavordb::MoleculeUniverse`] once, and
//! [`crate::pairing::IntersectScratch`] walks k-subsets with a
//! prefix-mask stack — one word-AND + popcount per step, with empty
//! prefixes pruning whole subtrees. Counts are exact integers, so every
//! score is bit-identical to the frozen [`mod@reference`] walker (property-
//! tested, and re-asserted by the `bench_ntuple` harness), and the
//! Monte-Carlo ensembles are block-seeded on the shared worker pool, so
//! they are bit-identical for every thread count.

pub mod reference;

use std::collections::HashMap;

use culinaria_flavordb::{FlavorDb, IngredientId, MoleculeUniverse};
use culinaria_obs::Metrics;
use culinaria_recipedb::Cuisine;
use culinaria_stats::rng::derive_seed;
use culinaria_stats::{fault, pool};
use culinaria_stats::{NullEnsemble, RunningStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::StageFailure;
use crate::monte_carlo::{MonteCarloConfig, BLOCK};
use crate::null_models::{CuisineSampler, NullModel, SampleScratch};
use crate::pairing::IntersectScratch;
use crate::view::{CuisineView, FlavorViewRef};

/// C(n, k) as an exact integer (0 when k > n). Recipe sizes stay far
/// below the u64 horizon, but the accumulator is widened anyway.
fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 1..=k {
        acc = acc * (n - k + i) as u128 / i as u128;
    }
    u64::try_from(acc).expect("binomial over recipe sizes fits u64")
}

/// Packed flavor profiles of an ingredient pool, ready for k-way
/// bitset intersections.
///
/// The pool is mapped to dense local indices `0..len` (same ordering
/// contract as [`crate::pairing::OverlapCache`]: a cuisine's sorted
/// ingredient set), and each profile is packed over the pool's own
/// molecule universe, so a k-way intersection is a prefix-mask AND +
/// popcount instead of k − 1 sorted merges.
#[derive(Debug, Clone)]
pub struct KTupleKernel {
    pool: Vec<IngredientId>,
    local: HashMap<IngredientId, u32>,
    /// `u64` blocks per packed profile.
    words: usize,
    /// Flattened row-major bit matrix: row `r` at `r*words..(r+1)*words`.
    bits: Vec<u64>,
}

impl KTupleKernel {
    /// Pack the profiles of an explicit pool (rows in pool order).
    pub fn build(db: &FlavorDb, pool: &[IngredientId]) -> KTupleKernel {
        KTupleKernel::build_view(FlavorViewRef::Owned(db), pool)
    }

    /// [`KTupleKernel::build`] over a [`FlavorViewRef`] — the single
    /// packing implementation both representations share. Profile
    /// slices are identical across representations, so the packed bit
    /// matrix (and every score derived from it) is bit-identical.
    ///
    /// # Panics
    /// Panics on a dead ingredient id, like the owned build.
    pub fn build_view(view: FlavorViewRef<'_>, pool: &[IngredientId]) -> KTupleKernel {
        let profiles: Vec<_> = pool
            .iter()
            .map(|&id| view.profile_molecules(id).expect("live ingredient"))
            .collect();
        let universe = MoleculeUniverse::build_from_slices(profiles.iter().copied());
        let words = universe.words();
        let mut bits = Vec::with_capacity(pool.len() * words);
        for p in &profiles {
            bits.extend_from_slice(universe.pack_ids(p).words());
        }
        let local = pool
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        KTupleKernel {
            pool: pool.to_vec(),
            local,
            words,
            bits,
        }
    }

    /// Build over a cuisine's distinct ingredient set — the same local
    /// indexing as [`CuisineSampler::build`] and
    /// [`crate::pairing::OverlapCache::for_cuisine`] on that cuisine.
    pub fn for_cuisine(db: &FlavorDb, cuisine: &Cuisine<'_>) -> KTupleKernel {
        KTupleKernel::build(db, &cuisine.ingredient_set())
    }

    /// [`KTupleKernel::for_cuisine`] over views.
    pub fn for_cuisine_view(view: FlavorViewRef<'_>, cuisine: &CuisineView<'_>) -> KTupleKernel {
        KTupleKernel::build_view(view, &cuisine.ingredient_set())
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// The pool in local-index order.
    pub fn pool(&self) -> &[IngredientId] {
        &self.pool
    }

    /// Local index of an ingredient, if it is in the pool.
    pub fn local_index(&self, id: IngredientId) -> Option<u32> {
        self.local.get(&id).copied()
    }

    /// N_s^(k) over local pool positions; 0 when `k < 2` or the recipe
    /// has fewer than k members.
    pub fn score_local_with(
        &self,
        locals: &[u32],
        k: usize,
        scratch: &mut IntersectScratch,
    ) -> f64 {
        let n = locals.len();
        if k < 2 || n < k {
            return 0.0;
        }
        let total = scratch.ktuple_sum(&self.bits, self.words, locals, k);
        total as f64 / binomial(n, k) as f64
    }

    /// N_s^(k) over ingredient ids, resolving locals into a caller-owned
    /// buffer; `None` when an id is outside the pool.
    pub fn score_ids_with(
        &self,
        ingredients: &[IngredientId],
        k: usize,
        locals: &mut Vec<u32>,
        scratch: &mut IntersectScratch,
    ) -> Option<f64> {
        locals.clear();
        for &id in ingredients {
            locals.push(self.local_index(id)?);
        }
        Some(self.score_local_with(locals, k, scratch))
    }
}

/// N_s^(k) of a recipe. 0 when the recipe has fewer than k ingredients
/// or k < 2. Bit-identical to [`reference::recipe_ktuple_score`].
pub fn recipe_ktuple_score(db: &FlavorDb, ingredients: &[IngredientId], k: usize) -> f64 {
    let n = ingredients.len();
    if k < 2 || n < k {
        return 0.0;
    }
    // Pack over the recipe's own profiles; rows align with input order,
    // so the locals are just 0..n (duplicates simply repeat a row, the
    // same thing the reference walker does with duplicate profiles).
    let kernel = KTupleKernel::build(db, ingredients);
    let locals: Vec<u32> = (0..n as u32).collect();
    kernel.score_local_with(&locals, k, &mut IntersectScratch::new())
}

/// Mean N_s^(k) over a cuisine's recipes of size ≥ k, via one shared
/// [`KTupleKernel`] (pack once, walk every recipe).
pub fn mean_cuisine_ktuple_score(db: &FlavorDb, cuisine: &Cuisine<'_>, k: usize) -> f64 {
    mean_cuisine_ktuple_score_with_threads(db, cuisine, k, 0)
}

/// Recipes per observed-scoring task (the parallel granularity of
/// [`mean_cuisine_ktuple_score_with_threads`]).
const RECIPE_BLOCK: usize = 256;

/// [`mean_cuisine_ktuple_score`] with an explicit worker count
/// (0 = available parallelism).
///
/// Recipes are scored in fixed blocks across the worker pool and the
/// per-recipe scores are folded **in recipe order**, so the mean is
/// bit-identical for every thread count (and to the serial fold).
pub fn mean_cuisine_ktuple_score_with_threads(
    db: &FlavorDb,
    cuisine: &Cuisine<'_>,
    k: usize,
    n_threads: usize,
) -> f64 {
    let kernel = KTupleKernel::for_cuisine(db, cuisine);
    let eligible: Vec<&[IngredientId]> = cuisine
        .recipes()
        .iter()
        .filter(|r| r.size() >= k)
        .map(|r| r.ingredients())
        .collect();
    if eligible.is_empty() {
        return 0.0;
    }
    let n_blocks = eligible.len().div_ceil(RECIPE_BLOCK);
    let blocks = pool::run(
        n_threads,
        n_blocks,
        || (Vec::new(), IntersectScratch::new()),
        |(locals, scratch), b| {
            let lo = b * RECIPE_BLOCK;
            let hi = ((b + 1) * RECIPE_BLOCK).min(eligible.len());
            eligible[lo..hi]
                .iter()
                .map(|ings| {
                    kernel
                        .score_ids_with(ings, k, locals, scratch)
                        .expect("cuisine pool covers its own recipes")
                })
                .collect::<Vec<f64>>()
        },
    );
    let mut total = 0.0;
    for block in &blocks {
        for &s in block {
            total += s;
        }
    }
    total / eligible.len() as f64
}

/// Scores k-tuple sharing over *local pool indices* emitted by a
/// [`CuisineSampler`], for null-model comparison at order k — the
/// kernel-backed replacement for [`reference::KTupleScorer`].
///
/// ```
/// use culinaria_core::ntuple::KTupleScorer;
/// use culinaria_flavordb::{Category, FlavorDb};
/// use culinaria_recipedb::{RecipeStore, Region, Source};
///
/// let mut db = FlavorDb::new();
/// db.add_anonymous_molecules(4);
/// use culinaria_flavordb::MoleculeId as M;
/// // All three ingredients share molecule 0; nothing else is common
/// // to any triple.
/// let a = db.add_ingredient("a", Category::Herb, vec![M(0), M(1)]).unwrap();
/// let b = db.add_ingredient("b", Category::Herb, vec![M(0), M(2)]).unwrap();
/// let c = db.add_ingredient("c", Category::Herb, vec![M(0), M(3)]).unwrap();
///
/// let mut store = RecipeStore::new();
/// store.add_recipe("r", Region::Italy, Source::Synthetic, vec![a, b, c]).unwrap();
/// let cuisine = store.cuisine(Region::Italy);
///
/// let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
/// assert_eq!(scorer.k(), 3);
/// // The cuisine pool is its sorted ingredient set, locals 0..3:
/// // exactly one molecule survives the 3-way intersection.
/// assert_eq!(scorer.score_local(&[0, 1, 2]), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct KTupleScorer {
    kernel: KTupleKernel,
    k: usize,
}

impl KTupleScorer {
    /// Build over the same pool ordering as
    /// [`CuisineSampler::build`] / `OverlapCache::for_cuisine` (the
    /// cuisine's sorted ingredient set).
    pub fn for_cuisine(db: &FlavorDb, cuisine: &Cuisine<'_>, k: usize) -> KTupleScorer {
        KTupleScorer {
            kernel: KTupleKernel::for_cuisine(db, cuisine),
            k,
        }
    }

    /// The subset order k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &KTupleKernel {
        &self.kernel
    }

    /// N_s^(k) over local pool positions (allocates a fresh scratch;
    /// batch callers should use [`KTupleScorer::score_local_with`]).
    pub fn score_local(&self, locals: &[u32]) -> f64 {
        self.kernel
            .score_local_with(locals, self.k, &mut IntersectScratch::new())
    }

    /// Allocation-free [`KTupleScorer::score_local`].
    pub fn score_local_with(&self, locals: &[u32], scratch: &mut IntersectScratch) -> f64 {
        self.kernel.score_local_with(locals, self.k, scratch)
    }
}

/// Per-worker scratch of the parallel n-tuple ensembles: the sampled
/// recipe, the sampler's distinctness bitmask, and the intersection
/// prefix-mask stack.
#[derive(Debug, Default)]
struct KTupleMcScratch {
    recipe: Vec<u32>,
    sample: SampleScratch,
    inter: IntersectScratch,
}

/// The PRNG stream id of one `(k, model, block)` cell. Salting with k
/// keeps ensembles of different orders on disjoint streams even under
/// one run seed (the pairwise engine's `(model, block)` lattice sits at
/// k = 0 of this layout and stays disjoint too).
fn ktuple_stream(k: usize, model: NullModel, block: usize) -> u64 {
    (k as u64) << 48 | (model.index() as u64) << 32 | block as u64
}

/// Monte-Carlo null ensemble of N_s^(k) for one cuisine and model,
/// parallel over fixed 2048-recipe blocks on the shared worker pool.
///
/// Block `b` draws from `derive_seed(cfg.seed, k << 48 | model << 32 |
/// b)` and per-block statistics merge in block order, so the ensemble
/// is **bit-identical for every thread count** — the same determinism
/// contract as the pairwise engine (DESIGN.md §6.2). Callers salt
/// `cfg.seed` per region (`derive_seed_labeled`) as usual.
///
/// Returns `None` for a degenerate ensemble (fewer than two recipes).
pub fn ktuple_null_ensemble(
    scorer: &KTupleScorer,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
) -> Option<NullEnsemble> {
    ktuple_null_ensemble_observed(scorer, sampler, model, cfg, &Metrics::disabled())
}

/// [`ktuple_null_ensemble`] instrumented through `metrics`: span
/// `mc.ktuple.run`, counters `mc.ktuple.recipes` / `mc.ktuple.blocks`,
/// per-block wall-time histogram `mc.ktuple.block_us`, and the shared
/// `pool.*` instruments — the k-tuple mirror of
/// [`crate::monte_carlo::run_null_model_observed`], with the same
/// guarantee: the ensemble is bit-identical to the unobserved run.
pub fn ktuple_null_ensemble_observed(
    scorer: &KTupleScorer,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Option<NullEnsemble> {
    try_ktuple_null_ensemble_observed(scorer, sampler, model, cfg, metrics)
        .unwrap_or_else(|failure| panic!("k-tuple Monte-Carlo run failed: {failure}"))
}

/// Fallible [`ktuple_null_ensemble`]: a panicking sampling block
/// becomes a structured [`StageFailure`] at stage `mc.ktuple.block`
/// (lowest block index wins) instead of a crash.
pub fn try_ktuple_null_ensemble(
    scorer: &KTupleScorer,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
) -> Result<Option<NullEnsemble>, StageFailure> {
    try_ktuple_null_ensemble_observed(scorer, sampler, model, cfg, &Metrics::disabled())
}

/// Fallible [`ktuple_null_ensemble_observed`]. On success the ensemble
/// and recorded metrics are bit-identical to the infallible run; on
/// failure the `error.mc.ktuple.block` counter is bumped and the lowest
/// failing block index is reported, identically for any thread count.
pub fn try_ktuple_null_ensemble_observed(
    scorer: &KTupleScorer,
    sampler: &CuisineSampler,
    model: NullModel,
    cfg: &MonteCarloConfig,
    metrics: &Metrics,
) -> Result<Option<NullEnsemble>, StageFailure> {
    let n_blocks = cfg.n_recipes.div_ceil(BLOCK);
    if n_blocks == 0 {
        return Ok(None);
    }
    let run_span = metrics.span("mc.ktuple.run");
    let run_guard = run_span.enter();
    metrics
        .counter("mc.ktuple.recipes")
        .add(cfg.n_recipes as u64);
    metrics.counter("mc.ktuple.blocks").add(n_blocks as u64);
    let block_hist = metrics.histogram("mc.ktuple.block_us");
    let blocks = pool::try_run_observed(
        cfg.n_threads,
        n_blocks,
        &pool::PoolObs::new(metrics),
        KTupleMcScratch::default,
        |scratch, b| -> Result<RunningStats, fault::InjectedFault> {
            fault::probe("mc.ktuple.block", b)?;
            let timer = block_hist.start();
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(cfg.n_recipes);
            let mut rng =
                StdRng::seed_from_u64(derive_seed(cfg.seed, ktuple_stream(scorer.k, model, b)));
            let mut stats = RunningStats::new();
            for _ in lo..hi {
                sampler.generate_into(model, &mut rng, &mut scratch.recipe, &mut scratch.sample);
                stats.push(scorer.score_local_with(&scratch.recipe, &mut scratch.inter));
            }
            timer.stop();
            Ok(stats)
        },
    )
    .map_err(|f| StageFailure::from_task("mc.ktuple.block", f).record(metrics))?;
    let mut total = RunningStats::new();
    for s in &blocks {
        total.merge(s);
    }
    let out = NullEnsemble::from_running(&total);
    run_guard.stop();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::recipe_pairing_score;
    use culinaria_flavordb::{Category, MoleculeId};
    use culinaria_recipedb::{RecipeStore, Region, Source};

    fn fixture() -> (FlavorDb, Vec<IngredientId>) {
        let mut db = FlavorDb::new();
        db.add_anonymous_molecules(12);
        // a, b, c all share molecule 0; pairs share extra molecules.
        let a = db
            .add_ingredient(
                "a",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(1), MoleculeId(2)],
            )
            .unwrap();
        let b = db
            .add_ingredient(
                "b",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(1), MoleculeId(3)],
            )
            .unwrap();
        let c = db
            .add_ingredient(
                "c",
                Category::Herb,
                vec![MoleculeId(0), MoleculeId(2), MoleculeId(3)],
            )
            .unwrap();
        let d = db
            .add_ingredient("d", Category::Meat, vec![MoleculeId(9)])
            .unwrap();
        (db, vec![a, b, c, d])
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(5, 3), 10);
        assert_eq!(binomial(3, 3), 1);
        assert_eq!(binomial(3, 0), 1);
        assert_eq!(binomial(2, 3), 0);
        assert_eq!(binomial(30, 15), 155_117_520);
    }

    #[test]
    fn k2_matches_pairwise_score() {
        let (db, ids) = fixture();
        for subset in [&ids[0..2], &ids[0..3], &ids[0..4]] {
            let pairwise = recipe_pairing_score(&db, subset);
            let k2 = recipe_ktuple_score(&db, subset, 2);
            assert!((pairwise - k2).abs() < 1e-12);
        }
    }

    #[test]
    fn triple_score_known_value() {
        let (db, ids) = fixture();
        // (a,b,c): only molecule 0 is in all three → N_s^(3) = 1.
        let s = recipe_ktuple_score(&db, &ids[0..3], 3);
        assert!((s - 1.0).abs() < 1e-12);
        // (a,b,c,d): C(4,3)=4 triples; only (a,b,c) shares (1), others
        // include d and share 0 → 1/4.
        let s = recipe_ktuple_score(&db, &ids, 3);
        assert!((s - 0.25).abs() < 1e-12);
        // Quadruple over (a,b,c,d): ∩ is empty → 0.
        assert_eq!(recipe_ktuple_score(&db, &ids, 4), 0.0);
    }

    #[test]
    fn degenerate_k_and_small_recipes() {
        let (db, ids) = fixture();
        assert_eq!(recipe_ktuple_score(&db, &ids[0..2], 3), 0.0);
        assert_eq!(recipe_ktuple_score(&db, &ids, 1), 0.0);
        assert_eq!(recipe_ktuple_score(&db, &[], 2), 0.0);
    }

    #[test]
    fn kernel_matches_reference_walker_bitwise() {
        let (db, ids) = fixture();
        for k in 2..=5 {
            for subset in [&ids[0..2], &ids[0..3], &ids[1..4], &ids[0..4]] {
                let kernel = recipe_ktuple_score(&db, subset, k);
                let walker = reference::recipe_ktuple_score(&db, subset, k);
                assert_eq!(kernel.to_bits(), walker.to_bits(), "k = {k}");
            }
        }
    }

    #[test]
    fn cuisine_mean_and_scorer_agree() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, ids[0..3].to_vec())
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, ids.clone())
            .unwrap();
        let cuisine = store.cuisine(Region::Italy);
        let mean = mean_cuisine_ktuple_score(&db, &cuisine, 3);
        assert!((mean - (1.0 + 0.25) / 2.0).abs() < 1e-12);

        let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
        // Local pool is sorted ids = [a, b, c, d] at positions 0..4.
        let s = scorer.score_local(&[0, 1, 2]);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(scorer.k(), 3);
        assert_eq!(scorer.kernel().len(), 4);
    }

    #[test]
    fn cuisine_mean_identical_for_any_thread_count() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        for i in 0..600 {
            let members = match i % 3 {
                0 => ids[0..3].to_vec(),
                1 => ids[1..4].to_vec(),
                _ => ids.clone(),
            };
            store
                .add_recipe(&format!("r{i}"), Region::Italy, Source::Synthetic, members)
                .unwrap();
        }
        let cuisine = store.cuisine(Region::Italy);
        for k in [2usize, 3] {
            let serial = mean_cuisine_ktuple_score_with_threads(&db, &cuisine, k, 1);
            let walker = {
                // Reference fold over the same recipes.
                let mut total = 0.0;
                let mut n = 0usize;
                for r in cuisine.recipes() {
                    if r.size() >= k {
                        total += reference::recipe_ktuple_score(&db, r.ingredients(), k);
                        n += 1;
                    }
                }
                total / n as f64
            };
            assert_eq!(serial.to_bits(), walker.to_bits(), "k = {k} vs reference");
            for threads in [0, 2, 8] {
                let parallel = mean_cuisine_ktuple_score_with_threads(&db, &cuisine, k, threads);
                assert_eq!(serial.to_bits(), parallel.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn null_ensemble_deterministic_across_thread_counts() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, ids[0..3].to_vec())
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, ids.clone())
            .unwrap();
        let cuisine = store.cuisine(Region::Italy);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
        let base = MonteCarloConfig {
            n_recipes: 8192,
            seed: 1,
            n_threads: 1,
        };
        let e = ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &base).unwrap();
        assert_eq!(e.n, 8192);
        assert!(e.mean >= 0.0);
        for threads in [2, 8] {
            let cfg = MonteCarloConfig {
                n_threads: threads,
                ..base
            };
            let p = ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &cfg).unwrap();
            assert_eq!(e.mean.to_bits(), p.mean.to_bits(), "{threads} threads");
            assert_eq!(
                e.std_dev.to_bits(),
                p.std_dev.to_bits(),
                "{threads} threads"
            );
        }
        // Degenerate request.
        let none = ktuple_null_ensemble(
            &scorer,
            &sampler,
            NullModel::Random,
            &MonteCarloConfig {
                n_recipes: 0,
                ..base
            },
        );
        assert!(none.is_none());
    }

    #[test]
    fn observed_ensemble_matches_and_records() {
        let (db, ids) = fixture();
        let mut store = RecipeStore::new();
        store
            .add_recipe("r1", Region::Italy, Source::Synthetic, ids[0..3].to_vec())
            .unwrap();
        store
            .add_recipe("r2", Region::Italy, Source::Synthetic, ids.clone())
            .unwrap();
        let cuisine = store.cuisine(Region::Italy);
        let sampler = CuisineSampler::build(&db, &cuisine).unwrap();
        let scorer = KTupleScorer::for_cuisine(&db, &cuisine, 3);
        let cfg = MonteCarloConfig {
            n_recipes: 4096,
            seed: 3,
            n_threads: 2,
        };
        let plain = ktuple_null_ensemble(&scorer, &sampler, NullModel::Random, &cfg).unwrap();
        let metrics = Metrics::enabled();
        let observed =
            ktuple_null_ensemble_observed(&scorer, &sampler, NullModel::Random, &cfg, &metrics)
                .unwrap();
        assert_eq!(plain.mean.to_bits(), observed.mean.to_bits());
        assert_eq!(plain.std_dev.to_bits(), observed.std_dev.to_bits());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("mc.ktuple.recipes"), Some(4096));
        assert_eq!(snap.counter("mc.ktuple.blocks"), Some(2));
        assert_eq!(snap.span("mc.ktuple.run").unwrap().calls, 1);
        assert_eq!(snap.histogram("mc.ktuple.block_us").unwrap().count, 2);
    }

    #[test]
    fn streams_disjoint_across_k_and_model() {
        let mut seen = std::collections::HashSet::new();
        for k in [0usize, 2, 3, 4] {
            for model in NullModel::ALL {
                for block in 0..4 {
                    assert!(seen.insert(ktuple_stream(k, model, block)));
                }
            }
        }
    }
}
