//! Property-based tests of the extension modules: cooking, networks,
//! fingerprints, taste, and classification.

use proptest::prelude::*;

use culinaria_core::cooking::{CookingMethod, Kitchen};
use culinaria_core::fingerprint::{cosine_similarity, CuisineFingerprint};
use culinaria_core::network::FlavorNetwork;
use culinaria_core::taste::recipe_taste;
use culinaria_flavordb::generator::{generate_flavor_db, GeneratorConfig};
use culinaria_flavordb::IngredientId;
use culinaria_recipedb::{RecipeStore, Region, Source};

fn db(seed: u64) -> culinaria_flavordb::FlavorDb {
    generate_flavor_db(&GeneratorConfig {
        seed,
        n_molecules: 120,
        n_ingredients: 30,
        mean_profile_size: 8.0,
        profile_sigma: 0.5,
        category_affinity: 0.5,
        shared_pool_fraction: 0.3,
    })
}

fn store_from(recipes: &[Vec<u32>]) -> RecipeStore {
    let mut store = RecipeStore::new();
    for (i, ings) in recipes.iter().enumerate() {
        let region = Region::from_index(i % 22).expect("index < 22");
        store
            .add_recipe(
                &format!("r{i}"),
                region,
                Source::Synthetic,
                ings.iter().map(|&x| IngredientId(x)).collect(),
            )
            .expect("non-empty");
    }
    store
}

fn arb_recipes() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..30, 2..8)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        4..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cooking_never_exceeds_raw_plus_signature(seed in 0u64..200, ing_idx in 0usize..30) {
        let kitchen = Kitchen::new(&db(seed));
        let ids: Vec<IngredientId> = kitchen.db().ingredient_ids().collect();
        let ing = ids[ing_idx % ids.len()];
        let raw_len = kitchen.db().ingredient(ing).expect("live").profile.len();
        for method in CookingMethod::ALL {
            let cooked = kitchen.cook(ing, method);
            // Bounded by raw + the method's signature molecules (≤ 3).
            prop_assert!(cooked.len() <= raw_len + 3, "{method}: {} > {raw_len}+3", cooked.len());
            // Deterministic.
            prop_assert_eq!(kitchen.cook(ing, method), cooked);
        }
    }

    #[test]
    fn network_handshake_invariants(seed in 0u64..200) {
        let d = db(seed);
        let pool: Vec<IngredientId> = d.ingredient_ids().collect();
        let net = FlavorNetwork::build(&d, &pool);
        // Handshake lemma: Σ degree = 2·|E|.
        let degree_sum: u64 = (0..net.n_nodes()).map(|i| u64::from(net.degree(i))).sum();
        prop_assert_eq!(degree_sum, 2 * net.n_edges() as u64);
        // Strengths are symmetric sums of overlaps: Σ strength = 2·Σ weights.
        let strength_sum: u64 = (0..net.n_nodes()).map(|i| net.strength(i)).sum();
        let edge_weight_sum: u64 = net.top_edges(usize::MAX).iter().map(|e| u64::from(e.weight)).sum();
        prop_assert_eq!(strength_sum, 2 * edge_weight_sum);
        // Density and clustering in range.
        prop_assert!((0.0..=1.0).contains(&net.density()));
        prop_assert!((0.0..=1.0).contains(&net.clustering_coefficient()));
        // Backbone monotone: higher threshold, fewer edges.
        prop_assert!(net.backbone(2).n_edges() <= net.n_edges());
        prop_assert!(net.backbone(5).n_edges() <= net.backbone(2).n_edges());
    }

    #[test]
    fn fingerprint_similarity_is_a_similarity(recipes in arb_recipes(), seed in 0u64..50) {
        let d = db(seed);
        let store = store_from(&recipes);
        let fps: Vec<CuisineFingerprint> = store
            .regions()
            .into_iter()
            .map(|r| CuisineFingerprint::of(&d, &store.cuisine(r)))
            .collect();
        for a in &fps {
            prop_assert!((cosine_similarity(a, a) - 1.0).abs() < 1e-9);
            for b in &fps {
                let s = cosine_similarity(a, b);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
                prop_assert!((s - cosine_similarity(b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn taste_shares_always_normalized(recipes in arb_recipes(), seed in 0u64..50) {
        let d = db(seed);
        for r in &recipes {
            let ings: Vec<IngredientId> = r.iter().map(|&x| IngredientId(x)).collect();
            let t = recipe_taste(&d, &ings);
            let total: f64 = t.shares.values().sum();
            // Synthetic molecules carry no descriptors → empty shares;
            // any non-empty profile must be normalized.
            prop_assert!(t.shares.is_empty() || (total - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&t.coverage()));
        }
    }

    #[test]
    fn classifier_scores_all_trained_regions(recipes in arb_recipes()) {
        let store = store_from(&recipes);
        let clf = culinaria_core::classify::CuisineClassifier::train(&store);
        let trained = clf.regions().len();
        prop_assert!(trained >= 1);
        for r in store.recipes().take(5) {
            let scores = clf.scores(r.ingredients());
            prop_assert_eq!(scores.len(), trained);
            prop_assert!(scores.iter().all(|(_, s)| s.is_finite()));
            // Sorted descending.
            for w in scores.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn prepared_pairing_matches_manual_computation(seed in 0u64..50) {
        let kitchen = Kitchen::new(&db(seed));
        let ids: Vec<IngredientId> = kitchen.db().ingredient_ids().take(4).collect();
        let prepared: Vec<(IngredientId, CookingMethod)> = ids
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, CookingMethod::ALL[k % 6]))
            .collect();
        let score = kitchen.prepared_pairing_score(&prepared);
        // Manual: cook each, average pairwise overlaps.
        let cooked: Vec<_> = prepared.iter().map(|&(i, m)| kitchen.cook(i, m)).collect();
        let mut total = 0usize;
        let mut pairs = 0usize;
        for i in 0..cooked.len() {
            for j in (i + 1)..cooked.len() {
                total += cooked[i].shared_count(&cooked[j]);
                pairs += 1;
            }
        }
        let manual = total as f64 / pairs as f64;
        prop_assert!((score - manual).abs() < 1e-12);
    }
}
