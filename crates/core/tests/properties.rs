//! Property-based tests of the pairing-analysis invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use culinaria_core::ntuple::recipe_ktuple_score;
use culinaria_core::null_models::{CuisineSampler, NullModel};
use culinaria_core::pairing::{mean_cuisine_score, recipe_pairing_score, OverlapCache};
use culinaria_flavordb::generator::{generate_flavor_db, GeneratorConfig};
use culinaria_flavordb::{FlavorDb, IngredientId};
use culinaria_recipedb::{RecipeStore, Region, Source};

/// A deterministic 40-ingredient database shared by the properties.
fn db() -> FlavorDb {
    generate_flavor_db(&GeneratorConfig {
        seed: 99,
        n_molecules: 150,
        n_ingredients: 40,
        mean_profile_size: 10.0,
        profile_sigma: 0.5,
        category_affinity: 0.5,
        shared_pool_fraction: 0.3,
    })
}

/// Strategy: a recipe as a set of distinct ingredient indices < 40.
fn arb_recipe() -> impl Strategy<Value = Vec<IngredientId>> {
    proptest::collection::btree_set(0u32..40, 0..12)
        .prop_map(|s| s.into_iter().map(IngredientId).collect())
}

/// Strategy: a small cuisine.
fn arb_cuisine_recipes() -> impl Strategy<Value = Vec<Vec<IngredientId>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..40, 2..10)
            .prop_map(|s| s.into_iter().map(IngredientId).collect::<Vec<_>>()),
        1..15,
    )
}

fn build_store(recipes: &[Vec<IngredientId>]) -> RecipeStore {
    let mut store = RecipeStore::new();
    for (i, ings) in recipes.iter().enumerate() {
        store
            .add_recipe(
                &format!("r{i}"),
                Region::Italy,
                Source::Synthetic,
                ings.clone(),
            )
            .expect("non-empty");
    }
    store
}

proptest! {
    #[test]
    fn pairing_score_non_negative_and_bounded(recipe in arb_recipe()) {
        let db = db();
        let s = recipe_pairing_score(&db, &recipe);
        prop_assert!(s >= 0.0);
        // Bounded by the largest pairwise overlap, which is bounded by
        // the largest profile.
        let max_profile = recipe
            .iter()
            .map(|&id| db.ingredient(id).expect("live").profile.len())
            .max()
            .unwrap_or(0);
        prop_assert!(s <= max_profile as f64);
    }

    #[test]
    fn pairing_score_is_permutation_invariant(recipe in arb_recipe()) {
        let db = db();
        let mut reversed = recipe.clone();
        reversed.reverse();
        let a = recipe_pairing_score(&db, &recipe);
        let b = recipe_pairing_score(&db, &reversed);
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cache_score_equals_direct(recipes in arb_cuisine_recipes()) {
        let db = db();
        let store = build_store(&recipes);
        let cuisine = store.cuisine(Region::Italy);
        let cache = OverlapCache::for_cuisine(&db, &cuisine);
        for r in cuisine.recipes() {
            let direct = recipe_pairing_score(&db, r.ingredients());
            let cached = cache.score_ids(r.ingredients()).expect("pool covers recipes");
            prop_assert!((direct - cached).abs() < 1e-12);
        }
        let direct_mean = mean_cuisine_score(&db, &cuisine);
        let cached_mean = cache.mean_cuisine_score(&cuisine).expect("pool covers recipes");
        prop_assert!((direct_mean - cached_mean).abs() < 1e-12);
    }

    #[test]
    fn k2_always_matches_pairwise(recipe in arb_recipe()) {
        let db = db();
        let a = recipe_pairing_score(&db, &recipe);
        let b = recipe_ktuple_score(&db, &recipe, 2);
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn kernel_walk_matches_frozen_reference_bitwise(recipe in arb_recipe()) {
        // Prefix-mask pruning must never change the subset sum: the
        // bitset kernel and the frozen pre-kernel walker agree to the
        // bit for every order.
        let db = db();
        for k in 2..=5usize {
            let kernel = recipe_ktuple_score(&db, &recipe, k);
            let walker =
                culinaria_core::ntuple::reference::recipe_ktuple_score(&db, &recipe, k);
            prop_assert_eq!(kernel.to_bits(), walker.to_bits(), "k = {}", k);
        }
    }

    #[test]
    fn kernel_cuisine_k2_equals_pairing_exactly(recipes in arb_cuisine_recipes()) {
        // Golden cross-check: N_s^(2) from the n-tuple kernel is the
        // pairing engine's N_s, exactly, on a generated cuisine.
        let db = db();
        let store = build_store(&recipes);
        let cuisine = store.cuisine(Region::Italy);
        let pairing = mean_cuisine_score(&db, &cuisine);
        let ktuple = culinaria_core::ntuple::mean_cuisine_ktuple_score(&db, &cuisine, 2);
        prop_assert_eq!(pairing.to_bits(), ktuple.to_bits());
    }

    #[test]
    fn ktuple_scores_decay_with_k(recipe in arb_recipe()) {
        let db = db();
        prop_assume!(recipe.len() >= 4);
        let k2 = recipe_ktuple_score(&db, &recipe, 2);
        let k3 = recipe_ktuple_score(&db, &recipe, 3);
        let k4 = recipe_ktuple_score(&db, &recipe, 4);
        // k-wise intersections shrink monotonically in expectation; as
        // a hard invariant, N_s^(k+1) ≤ N_s^(k) holds because every
        // (k+1)-intersection is contained in its k-sub-intersections.
        prop_assert!(k3 <= k2 + 1e-12, "k3 {k3} > k2 {k2}");
        prop_assert!(k4 <= k3 + 1e-12, "k4 {k4} > k3 {k3}");
    }

    #[test]
    fn null_samples_valid_for_every_model(
        recipes in arb_cuisine_recipes(),
        seed in 0u64..500,
    ) {
        let db = db();
        let store = build_store(&recipes);
        let cuisine = store.cuisine(Region::Italy);
        let sampler = CuisineSampler::build(&db, &cuisine).expect("size >= 2 recipes exist");
        let observed_sizes: std::collections::HashSet<usize> = cuisine
            .recipes()
            .iter()
            .filter(|r| r.size() >= 2)
            .map(|r| r.size())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for model in NullModel::ALL {
            for _ in 0..30 {
                let sampled = sampler.generate(model, &mut rng);
                // Distinct, in range, and matching an observed size
                // (pool is at least as large as the biggest recipe).
                let mut d = sampled.clone();
                d.sort_unstable();
                d.dedup();
                prop_assert_eq!(d.len(), sampled.len(), "{} produced duplicates", model);
                prop_assert!(sampled.iter().all(|&p| (p as usize) < sampler.pool_len()));
                prop_assert!(
                    observed_sizes.contains(&sampled.len()),
                    "{}: size {} not among observed {:?}",
                    model, sampled.len(), observed_sizes
                );
            }
        }
    }

    #[test]
    fn contribution_zero_sum_sanity(recipes in arb_cuisine_recipes()) {
        let db = db();
        let store = build_store(&recipes);
        let cuisine = store.cuisine(Region::Italy);
        let contributions =
            culinaria_core::contribution::ingredient_contributions(&db, &cuisine);
        // One entry per distinct pool ingredient, all finite.
        if !contributions.is_empty() {
            prop_assert_eq!(contributions.len(), cuisine.ingredient_set().len());
        }
        for c in &contributions {
            prop_assert!(c.percent_change.is_finite(), "{}: {}", c.name, c.percent_change);
            prop_assert!(c.n_recipes >= 1);
        }
    }
}
