//! World-generation configuration.

use culinaria_flavordb::generator::GeneratorConfig;

/// Configuration for [`crate::generate_world`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed. All randomness derives from it.
    pub seed: u64,
    /// Configuration of the underlying flavor-database generator.
    pub flavor: GeneratorConfig,
    /// Multiplier on Table 1 recipe counts. `1.0` reproduces the paper's
    /// 45,565 region-attributed recipes; tests use much smaller values.
    /// Each region keeps at least [`WorldConfig::min_region_recipes`].
    pub recipe_scale: f64,
    /// Floor on per-region recipe count after scaling.
    pub min_region_recipes: usize,
    /// Mean recipe size (paper: ≈ 9 ingredients).
    pub mean_recipe_size: f64,
    /// Probability that each ingredient slot after the first is chosen
    /// by the pairing-biased best/worst-of-K rule rather than plain
    /// popularity sampling. `0` disables pairing bias entirely.
    ///
    /// This is the *residual* co-selection signal that the Frequency
    /// null model cannot reproduce; the paper finds frequency explains
    /// pairing "to a large extent" but not exactly, so keep it small.
    pub pairing_bias: f64,
    /// Number of candidates scored by the best/worst-of-K rule.
    pub pairing_candidates: usize,
    /// Zipf exponent for within-region ingredient popularity.
    pub popularity_exponent: f64,
    /// Strength of the similarity-aware popularity ranking: in positive
    /// regions the most popular ingredients are mutually *similar* in
    /// flavor, in negative regions mutually *dissimilar*. This is the
    /// mechanism behind the paper's central finding that ingredient
    /// frequency accounts for both positive and negative food pairing.
    pub popularity_similarity_bias: f64,
}

impl WorldConfig {
    /// The paper-scale configuration: Table 1 counts, 840-ingredient
    /// flavor universe, mean recipe size 9.
    pub fn paper() -> Self {
        WorldConfig {
            seed: 2018,
            flavor: GeneratorConfig {
                // Looser category clustering: flavor similarity must
                // not be reducible to category membership, or the
                // Category null model would (wrongly) explain pairing.
                category_affinity: 0.25,
                ..GeneratorConfig::default()
            },
            recipe_scale: 1.0,
            min_region_recipes: 30,
            mean_recipe_size: 9.0,
            pairing_bias: 0.35,
            pairing_candidates: 4,
            popularity_exponent: 1.0,
            popularity_similarity_bias: 1.4,
        }
    }

    /// A miniature world for unit tests and doc examples: every region
    /// present, a few hundred recipes total, tiny flavor universe.
    pub fn tiny() -> Self {
        WorldConfig {
            seed: 2018,
            flavor: GeneratorConfig {
                category_affinity: 0.25,
                ..GeneratorConfig::tiny(2018)
            },
            recipe_scale: 0.01,
            min_region_recipes: 20,
            mean_recipe_size: 7.0,
            pairing_bias: 0.35,
            pairing_candidates: 4,
            popularity_exponent: 1.0,
            popularity_similarity_bias: 1.4,
        }
    }

    /// A mid-size world (~10% of paper scale) for integration tests and
    /// quick harness runs.
    pub fn small() -> Self {
        WorldConfig {
            seed: 2018,
            flavor: GeneratorConfig {
                n_molecules: 800,
                n_ingredients: 400,
                category_affinity: 0.25,
                ..GeneratorConfig::default()
            },
            recipe_scale: 0.1,
            min_region_recipes: 30,
            mean_recipe_size: 9.0,
            pairing_bias: 0.35,
            pairing_candidates: 4,
            popularity_exponent: 1.0,
            popularity_similarity_bias: 1.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = WorldConfig::paper();
        assert_eq!(p.recipe_scale, 1.0);
        assert_eq!(p.mean_recipe_size, 9.0);
        assert!(p.pairing_bias > 0.0 && p.pairing_bias <= 1.0);

        let t = WorldConfig::tiny();
        assert!(t.recipe_scale < 0.05);
        assert!(t.flavor.n_ingredients < 100);

        let s = WorldConfig::small();
        assert!(s.recipe_scale < p.recipe_scale);
    }
}
