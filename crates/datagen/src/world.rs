//! World generation: flavor universe + Table-1-calibrated recipe corpus.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use culinaria_flavordb::generator::generate_flavor_db;
use culinaria_flavordb::{FlavorDb, FlavorProfile, IngredientId};
use culinaria_recipedb::{RecipeStore, Region, Source};
use culinaria_stats::rng::derive_seed_labeled;
use culinaria_stats::WeightedAliasSampler;

use crate::config::WorldConfig;
use crate::prefs::category_preferences;

/// A generated world: the flavor database and the recipe corpus.
#[derive(Debug, Clone)]
pub struct World {
    /// The flavor molecule database all recipes reference.
    pub flavor: FlavorDb,
    /// The recipe store, partitioned into the 22 regions.
    pub recipes: RecipeStore,
}

/// Knuth's Poisson sampler; adequate for the small λ of recipe sizes.
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Weighted sampling of `k` distinct indices without replacement
/// (Efraimidis–Spirakis exponential-jump keys: smallest −ln(u)/w win).
fn weighted_sample_without_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(i, &w)| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            (-u.ln() / w, i)
        })
        .collect();
    let k = k.min(keyed.len());
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    keyed.truncate(k);
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Per-region source mix: the Indian Subcontinent is dominated by
/// TarlaDalal (the paper's 2,609 TarlaDalal recipes are Indian); other
/// regions split across the three big US sites in the paper's global
/// proportions.
fn sample_source<R: Rng + ?Sized>(region: Region, rng: &mut R) -> Source {
    if region == Region::IndianSubcontinent && rng.random::<f64>() < 0.6 {
        return Source::TarlaDalal;
    }
    // AllRecipes : FoodNetwork : Epicurious ≈ 16177 : 15917 : 11069.
    let u: f64 = rng.random::<f64>() * (16_177.0 + 15_917.0 + 11_069.0);
    if u < 16_177.0 {
        Source::AllRecipes
    } else if u < 16_177.0 + 15_917.0 {
        Source::FoodNetwork
    } else {
        Source::Epicurious
    }
}

/// Number of top-ranked ingredients whose profiles steer the greedy
/// ranking (and dominate usage under the Zipf popularity law).
const TOP_INFLUENCE: usize = 12;

/// Greedy similarity-aware ranking: returns a permutation of
/// `0..weights.len()` from most to least popular.
///
/// Each step picks the unranked candidate maximizing
/// `weight · exp(±bias · overlap / scale)` where `overlap` is the mean
/// shared-compound count with the top-ranked ingredients so far (up to
/// [`TOP_INFLUENCE`]); the sign is `+` for uniform-pairing regions and
/// `−` for contrasting ones.
fn similarity_aware_ranking(
    cfg: &WorldConfig,
    positive: bool,
    weights: &[f64],
    profiles: &[&FlavorProfile],
) -> Vec<usize> {
    let m = weights.len();
    if m == 0 {
        return Vec::new();
    }
    let alpha = cfg.popularity_similarity_bias * if positive { 1.0 } else { -1.0 };

    // Overlap scale: the mean pairwise overlap over a deterministic
    // stride-sampled set of pairs (avoids O(m²) full enumeration).
    let mut total = 0usize;
    let mut pairs = 0usize;
    let step = (m / 48).max(1);
    for i in (0..m).step_by(step) {
        for j in ((i + 1)..m).step_by(step) {
            total += profiles[i].shared_count(profiles[j]);
            pairs += 1;
        }
    }
    let scale = if pairs == 0 {
        1.0
    } else {
        (total as f64 / pairs as f64).max(0.5)
    };

    let mut ranked: Vec<usize> = Vec::with_capacity(m);
    let mut used = vec![false; m];
    // Overlap sum of each candidate with the ranked top ingredients.
    let mut acc = vec![0.0f64; m];

    // Seed with the heaviest candidate.
    let first = (0..m)
        .max_by(|&a, &b| weights[a].total_cmp(&weights[b]))
        .expect("non-empty");
    ranked.push(first);
    used[first] = true;

    while ranked.len() < m {
        let influence = ranked.len().min(TOP_INFLUENCE);
        // Update accumulators only while the influence set is growing.
        if ranked.len() <= TOP_INFLUENCE {
            let newest = *ranked.last().expect("non-empty ranked");
            for (c, slot) in acc.iter_mut().enumerate() {
                if !used[c] {
                    *slot += profiles[newest].shared_count(profiles[c]) as f64;
                }
            }
        }
        let best = (0..m)
            .filter(|&c| !used[c])
            .max_by(|&a, &b| {
                let score = |c: usize| {
                    let sim = acc[c] / influence as f64 / scale;
                    weights[c] * (alpha * sim).clamp(-3.0, 3.0).exp()
                };
                score(a).total_cmp(&score(b))
            })
            .expect("unranked candidates remain");
        ranked.push(best);
        used[best] = true;
    }
    ranked
}

/// State for generating one region's cuisine.
struct RegionGen<'a> {
    region: Region,
    /// The region's ingredient pool, in popularity-rank order.
    pool: Vec<IngredientId>,
    /// Borrowed profiles parallel to `pool`.
    profiles: Vec<&'a FlavorProfile>,
    /// Popularity (Zipf) sampler over pool positions.
    popularity: WeightedAliasSampler,
}

impl<'a> RegionGen<'a> {
    fn build(cfg: &WorldConfig, flavor: &'a FlavorDb, region: Region, rng: &mut StdRng) -> Self {
        let all_ids: Vec<IngredientId> = flavor.ingredient_ids().collect();
        let prefs = category_preferences(region);

        // Pool selection: weighted (category preference × jitter) sample
        // without replacement, sized to Table 1's unique-ingredient count.
        let pool_target = (region.paper_ingredient_count() as usize).min(all_ids.len());
        let weights: Vec<f64> = all_ids
            .iter()
            .map(|&id| {
                let cat = flavor
                    .ingredient(id)
                    .expect("live id from ingredient_ids")
                    .category;
                // Mild jitter only: the category-preference signal (Fig 2)
                // must survive any PRNG stream, so the per-ingredient
                // noise stays well inside the preference ratios.
                prefs[cat.index()] * (0.6 + 0.8 * rng.random::<f64>())
            })
            .collect();
        let chosen = weighted_sample_without_replacement(&weights, pool_target, rng);
        let chosen_ids: Vec<IngredientId> = chosen.iter().map(|&i| all_ids[i]).collect();
        let chosen_weights: Vec<f64> = chosen.iter().map(|&i| weights[i]).collect();
        let chosen_profiles: Vec<&FlavorProfile> = chosen_ids
            .iter()
            .map(|&id| &flavor.ingredient(id).expect("live id").profile)
            .collect();

        // Similarity-aware popularity ranking. Base order follows the
        // category-preference weight (Fig 2 meets Fig 3b), but the
        // greedy tilts toward candidates whose flavor profiles overlap
        // the already-ranked top ingredients — positively in uniform-
        // pairing regions, negatively in contrasting ones. This plants
        // the paper's central mechanism in the data: *which ingredients
        // are frequent* accounts for the pairing sign.
        let order = similarity_aware_ranking(
            cfg,
            region.paper_positive_pairing(),
            &chosen_weights,
            &chosen_profiles,
        );
        let pool: Vec<IngredientId> = order.iter().map(|&i| chosen_ids[i]).collect();
        let profiles: Vec<&FlavorProfile> = order.iter().map(|&i| chosen_profiles[i]).collect();

        let zipf: Vec<f64> = (0..pool.len())
            .map(|r| 1.0 / ((r + 1) as f64).powf(cfg.popularity_exponent))
            .collect();
        let popularity = WeightedAliasSampler::new(&zipf).expect("non-empty positive zipf weights");

        RegionGen {
            region,
            pool,
            profiles,
            popularity,
        }
    }

    /// Mean shared-compound count between pool position `cand` and the
    /// chosen positions.
    fn affinity(&self, cand: usize, chosen: &[usize]) -> f64 {
        if chosen.is_empty() {
            return 0.0;
        }
        let total: usize = chosen
            .iter()
            .map(|&c| self.profiles[cand].shared_count(self.profiles[c]))
            .sum();
        total as f64 / chosen.len() as f64
    }

    /// Draw a pool position not already in `chosen` (bounded rejection,
    /// then linear fallback for tiny pools).
    fn draw_new<R: Rng + ?Sized>(&self, chosen: &[usize], rng: &mut R) -> Option<usize> {
        for _ in 0..64 {
            let c = self.popularity.sample(rng);
            if !chosen.contains(&c) {
                return Some(c);
            }
        }
        (0..self.pool.len()).find(|c| !chosen.contains(c))
    }

    /// Generate one recipe's ingredient list.
    fn generate_recipe(&self, cfg: &WorldConfig, rng: &mut StdRng) -> Vec<IngredientId> {
        let size = (2 + sample_poisson((cfg.mean_recipe_size - 2.0).max(0.0), rng))
            .clamp(2, 30)
            .min(self.pool.len());
        let positive = self.region.paper_positive_pairing();
        let mut chosen: Vec<usize> = Vec::with_capacity(size);
        if let Some(first) = self.draw_new(&chosen, rng) {
            chosen.push(first);
        }
        while chosen.len() < size {
            let use_bias = rng.random::<f64>() < cfg.pairing_bias;
            let next = if use_bias {
                // Best-of-K (positive regions) or worst-of-K (negative):
                // K popularity draws, scored by flavor affinity with the
                // partial recipe.
                let mut best: Option<(f64, usize)> = None;
                for _ in 0..cfg.pairing_candidates.max(1) {
                    let Some(cand) = self.draw_new(&chosen, rng) else {
                        break;
                    };
                    let score = self.affinity(cand, &chosen);
                    let better = match best {
                        None => true,
                        Some((s, _)) => {
                            if positive {
                                score > s
                            } else {
                                score < s
                            }
                        }
                    };
                    if better {
                        best = Some((score, cand));
                    }
                }
                best.map(|(_, c)| c)
            } else {
                self.draw_new(&chosen, rng)
            };
            match next {
                Some(c) => chosen.push(c),
                None => break,
            }
        }
        chosen.into_iter().map(|c| self.pool[c]).collect()
    }
}

/// Generate a complete world from a configuration. Deterministic in
/// `cfg.seed`; per-region streams are independent, so changing one
/// region's count does not perturb another's recipes.
pub fn generate_world(cfg: &WorldConfig) -> World {
    let flavor = generate_flavor_db(&cfg.flavor);
    let mut recipes = RecipeStore::new();

    for region in Region::ALL {
        let mut rng = StdRng::seed_from_u64(derive_seed_labeled(cfg.seed, region.code()));
        let gen = RegionGen::build(cfg, &flavor, region, &mut rng);
        let target = ((region.paper_recipe_count() as f64 * cfg.recipe_scale).round() as usize)
            .max(cfg.min_region_recipes);
        for k in 0..target {
            let ingredients = gen.generate_recipe(cfg, &mut rng);
            let source = sample_source(region, &mut rng);
            recipes
                .add_recipe(
                    &format!("{}-{:05}", region.code(), k),
                    region,
                    source,
                    ingredients,
                )
                .expect("generated recipes are non-empty");
        }
    }

    World { flavor, recipes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        generate_world(&WorldConfig::tiny())
    }

    #[test]
    fn all_regions_populated() {
        let w = tiny_world();
        for r in Region::ALL {
            assert!(
                w.recipes.n_region_recipes(r) >= WorldConfig::tiny().min_region_recipes,
                "{r} underpopulated"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.recipes.n_recipes(), b.recipes.n_recipes());
        for (x, y) in a.recipes.recipes().zip(b.recipes.recipes()) {
            assert_eq!(x, y);
        }
        let mut cfg = WorldConfig::tiny();
        cfg.seed = 999;
        let c = generate_world(&cfg);
        let identical = a
            .recipes
            .recipes()
            .zip(c.recipes.recipes())
            .all(|(x, y)| x.ingredients() == y.ingredients());
        assert!(!identical, "different seeds must differ");
    }

    #[test]
    fn recipe_sizes_bounded_thin_tailed() {
        let w = tiny_world();
        let sizes: Vec<usize> = w.recipes.recipes().map(|r| r.size()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let cfg = WorldConfig::tiny();
        assert!(
            (mean - cfg.mean_recipe_size).abs() < 1.5,
            "mean recipe size {mean}, expected ≈ {}",
            cfg.mean_recipe_size
        );
        assert!(*sizes.iter().max().unwrap() <= 30);
        assert!(*sizes.iter().min().unwrap() >= 2);
    }

    #[test]
    fn recipes_have_distinct_ingredients() {
        let w = tiny_world();
        for r in w.recipes.recipes().take(200) {
            let mut ings = r.ingredients().to_vec();
            let n = ings.len();
            ings.dedup();
            assert_eq!(ings.len(), n, "duplicates inside {}", r.name);
        }
    }

    #[test]
    fn pool_sizes_respect_table1_cap() {
        // In the tiny universe (60 ingredients) every region's distinct
        // ingredient usage is capped by the universe, not Table 1.
        let w = tiny_world();
        for r in Region::ALL {
            let used = w.recipes.cuisine(r).ingredient_set().len();
            assert!(used <= 60, "{r} used {used}");
            assert!(used > 5, "{r} uses implausibly few ingredients");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let w = tiny_world();
        let c = w.recipes.cuisine(Region::Italy);
        let mut freqs: Vec<u64> = c.frequencies().into_values().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf-ish: the top ingredient is used far more than the median.
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(
            top >= median * 3,
            "popularity not skewed: top {top}, median {median}"
        );
    }

    #[test]
    fn pairing_bias_separates_positive_and_negative_regions() {
        // Mean within-recipe shared-compound count, region-normalized by
        // the expected overlap of popularity-weighted random pairs. The
        // positive region should exceed the negative one clearly.
        let w = generate_world(&WorldConfig::tiny());
        let score = |region: Region| -> f64 {
            let c = w.recipes.cuisine(region);
            let mut total = 0.0;
            let mut n = 0usize;
            for r in c.recipes() {
                let ings = r.ingredients();
                for i in 0..ings.len() {
                    for j in (i + 1)..ings.len() {
                        let a = &w.flavor.ingredient(ings[i]).unwrap().profile;
                        let b = &w.flavor.ingredient(ings[j]).unwrap().profile;
                        total += a.shared_count(b) as f64;
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        let ita = score(Region::Italy); // positive pairing
        let jpn = score(Region::Japan); // negative pairing
        assert!(
            ita > jpn,
            "positive region should share more: ITA {ita} vs JPN {jpn}"
        );
    }

    #[test]
    fn paper_scale_counts_match_table1() {
        // Scale 1.0 with a modest flavor universe: counts must equal
        // Table 1 exactly for a couple of spot-checked regions. Use a
        // trimmed config so the test stays fast.
        let cfg = WorldConfig {
            recipe_scale: 1.0,
            min_region_recipes: 1,
            ..WorldConfig::tiny()
        };
        let w = generate_world(&cfg);
        assert_eq!(
            w.recipes.n_region_recipes(Region::Korea),
            Region::Korea.paper_recipe_count() as usize
        );
        assert_eq!(
            w.recipes.n_region_recipes(Region::Scandinavia),
            Region::Scandinavia.paper_recipe_count() as usize
        );
    }

    #[test]
    fn sources_assigned_plausibly() {
        let w = tiny_world();
        let insc = w.recipes.cuisine(Region::IndianSubcontinent);
        let tarla = insc
            .recipes()
            .iter()
            .filter(|r| r.source == Source::TarlaDalal)
            .count();
        assert!(
            tarla * 2 >= insc.n_recipes(),
            "TarlaDalal should dominate INSC: {tarla}/{}",
            insc.n_recipes()
        );
        // And TarlaDalal appears (almost) nowhere else.
        let ita_tarla = w
            .recipes
            .cuisine(Region::Italy)
            .recipes()
            .iter()
            .filter(|r| r.source == Source::TarlaDalal)
            .count();
        assert_eq!(ita_tarla, 0);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(7.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 7.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn weighted_sample_without_replacement_properties() {
        let mut rng = StdRng::seed_from_u64(4);
        let weights = [1.0, 0.0, 5.0, 2.0, 0.0, 3.0];
        for _ in 0..50 {
            let s = weighted_sample_without_replacement(&weights, 3, &mut rng);
            assert_eq!(s.len(), 3);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3);
            // Zero-weight indices never drawn.
            assert!(!s.contains(&1) && !s.contains(&4));
        }
        // k larger than positive support.
        let s = weighted_sample_without_replacement(&weights, 10, &mut rng);
        assert_eq!(s.len(), 4);
    }
}
