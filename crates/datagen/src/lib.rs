#![warn(missing_docs)]

//! # culinaria-datagen
//!
//! The calibrated synthetic world generator — the stand-in for the
//! paper's scraped CulinaryDB corpus, which is not available offline.
//!
//! [`generate_world`] produces a [`World`] — a flavor database plus a
//! recipe store — calibrated to the paper's published statistics:
//!
//! * **Table 1 exactly**: each of the 22 regions gets its published
//!   recipe count and (up to universe size) its published unique
//!   ingredient pool size, at `recipe_scale = 1.0`;
//! * **recipe sizes** bounded and thin-tailed with mean ≈ 9 (shifted
//!   Poisson, clamped) — Fig 3a;
//! * **ingredient popularity** Zipf-ranked within each region's pool,
//!   reproducing the consistent rank-frequency scaling of Fig 3b;
//! * **category composition**: each region ranks its pool by a
//!   region-specific category-preference table encoding Fig 2's
//!   observations (France/British Isles/Scandinavia dairy-heavy;
//!   Indian Subcontinent/Africa/Middle East/Caribbean spice-forward;
//!   Japan/Korea fish-forward; Mexico maize-rich, …);
//! * **pairing regime**: ingredient co-selection is biased toward
//!   flavor-profile overlap in the 16 positive regions and away from it
//!   in the 6 negative regions (Fig 4's sign pattern), via a
//!   best/worst-of-K candidate rule that leaves the popularity
//!   distribution intact — which is exactly the paper's finding that
//!   frequency largely accounts for pairing.
//!
//! Everything is deterministic in `WorldConfig::seed`.

pub mod config;
pub mod prefs;
pub mod world;

pub use config::WorldConfig;
pub use world::{generate_world, World};
