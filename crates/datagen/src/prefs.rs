//! Per-region category-preference tables encoding Fig 2.
//!
//! The paper's Fig 2 heatmap shows which ingredient categories each
//! regional cuisine leans on. We encode a global baseline (§II.A: at the
//! aggregate level "Vegetable, Spice, Dairy, Herb, Plant, Meat and Fruit
//! categories are used most frequently") and the named regional
//! deviations (France/British Isles/Scandinavia use dairy more than
//! vegetables; the Indian Subcontinent, Africa, Middle East and
//! Caribbean are spice-predominant), plus geography-informed boosts for
//! the remaining regions so the heatmap has realistic structure.

use culinaria_flavordb::Category;
use culinaria_recipedb::Region;

/// Global baseline usage weight per category, [`Category::index`] order.
/// Encodes the aggregate ranking of Fig 2 (Additive is real but the
/// paper excludes it from the figure; we keep a moderate weight).
const BASELINE: [f64; 21] = [
    12.0, // Vegetable
    8.0,  // Dairy
    2.5,  // Legume
    1.5,  // Maize
    3.0,  // Cereal
    6.0,  // Meat
    3.0,  // NutsAndSeeds
    6.0,  // Plant
    2.0,  // Fish
    1.5,  // Seafood
    9.0,  // Spice
    2.5,  // Bakery
    2.0,  // BeverageAlcoholic
    2.0,  // Beverage
    0.5,  // EssentialOil
    0.5,  // Flower
    5.0,  // Fruit
    1.5,  // Fungus
    7.0,  // Herb
    4.0,  // Additive
    2.0,  // Dish
];

/// Multiplicative regional boosts on the baseline: `(region, category,
/// factor)`. Factors > 1 increase a category's usage share.
const BOOSTS: &[(Region, Category, f64)] = &[
    // "France, British Isles, and Scandinavia regions use dairy products
    // more prominently than vegetables."
    (Region::France, Category::Dairy, 2.4),
    (Region::BritishIsles, Category::Dairy, 2.8),
    (Region::Scandinavia, Category::Dairy, 2.8),
    (Region::Scandinavia, Category::Fish, 2.5),
    // "Among regions with predominant use of spice were Indian
    // Subcontinent, Africa, Middle East, and Caribbean."
    (Region::IndianSubcontinent, Category::Spice, 2.8),
    (Region::IndianSubcontinent, Category::Legume, 2.0),
    (Region::Africa, Category::Spice, 2.4),
    (Region::MiddleEast, Category::Spice, 2.3),
    (Region::MiddleEast, Category::NutsAndSeeds, 1.8),
    (Region::Caribbean, Category::Spice, 2.2),
    (Region::Caribbean, Category::Fruit, 1.6),
    // Geography-informed structure for the remaining regions.
    (Region::Japan, Category::Fish, 3.2),
    (Region::Japan, Category::Seafood, 2.8),
    (Region::Korea, Category::Vegetable, 1.5),
    (Region::Korea, Category::Fish, 2.2),
    (Region::China, Category::Vegetable, 2.0),
    (Region::China, Category::Seafood, 2.6),
    (Region::Thailand, Category::Herb, 2.0),
    (Region::Thailand, Category::Spice, 1.6),
    (Region::SouthEastAsia, Category::Spice, 1.7),
    (Region::SouthEastAsia, Category::Seafood, 1.8),
    (Region::Mexico, Category::Maize, 3.5),
    (Region::Mexico, Category::Spice, 1.8),
    (Region::Italy, Category::Herb, 1.8),
    (Region::Italy, Category::Plant, 1.6),
    (Region::Greece, Category::Plant, 2.4),
    (Region::Greece, Category::Herb, 2.0),
    (Region::Spain, Category::Seafood, 2.4),
    (Region::Spain, Category::Plant, 1.9),
    (Region::Dach, Category::Meat, 1.9),
    (Region::Dach, Category::Bakery, 1.8),
    (Region::EasternEurope, Category::Meat, 1.7),
    (Region::EasternEurope, Category::Dairy, 1.4),
    (Region::Usa, Category::Bakery, 1.6),
    (Region::Usa, Category::Dairy, 1.4),
    (Region::Canada, Category::Bakery, 2.2),
    (Region::Canada, Category::Cereal, 1.8),
    (Region::Canada, Category::Fish, 2.0),
    (Region::Canada, Category::Fruit, 1.6),
    (Region::AustraliaNz, Category::Meat, 2.2),
    (Region::AustraliaNz, Category::Dairy, 1.5),
    (Region::AustraliaNz, Category::Seafood, 1.8),
    (Region::SouthAmerica, Category::Maize, 2.8),
    (Region::SouthAmerica, Category::Meat, 2.0),
    (Region::SouthAmerica, Category::Fruit, 2.0),
];

/// The category usage-preference vector for a region (baseline ×
/// regional boosts), indexed by [`Category::index`].
pub fn category_preferences(region: Region) -> [f64; 21] {
    let mut w = BASELINE;
    for &(r, c, f) in BOOSTS {
        if r == region {
            w[c.index()] *= f;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dairy_beats_vegetables_where_paper_says() {
        for r in [Region::France, Region::BritishIsles, Region::Scandinavia] {
            let w = category_preferences(r);
            assert!(
                w[Category::Dairy.index()] > w[Category::Vegetable.index()],
                "{r}: dairy should dominate vegetables"
            );
        }
        // And NOT in the aggregate baseline.
        let ita = category_preferences(Region::Italy);
        assert!(ita[Category::Vegetable.index()] > ita[Category::Dairy.index()]);
    }

    #[test]
    fn spice_forward_regions() {
        let baseline_spice = BASELINE[Category::Spice.index()];
        for r in [
            Region::IndianSubcontinent,
            Region::Africa,
            Region::MiddleEast,
            Region::Caribbean,
        ] {
            let w = category_preferences(r);
            assert!(w[Category::Spice.index()] > 2.0 * baseline_spice, "{r}");
            // Spice becomes the top category in these cuisines.
            let max = w.iter().cloned().fold(0.0, f64::max);
            assert_eq!(w[Category::Spice.index()], max, "{r}: spice should top");
        }
    }

    #[test]
    fn all_weights_positive() {
        for r in Region::ALL {
            for (i, &w) in category_preferences(r).iter().enumerate() {
                assert!(w > 0.0, "{r} category {i}");
            }
        }
    }

    #[test]
    fn japan_is_fish_forward() {
        let w = category_preferences(Region::Japan);
        assert!(w[Category::Fish.index()] > BASELINE[Category::Fish.index()] * 3.0);
    }
}
