//! Property-based tests of the world generator's calibration
//! invariants across random seeds and scales.

use proptest::prelude::*;

use culinaria_datagen::{generate_world, WorldConfig};
use culinaria_recipedb::Region;

fn cfg_with(seed: u64, scale: f64) -> WorldConfig {
    let mut cfg = WorldConfig::tiny();
    cfg.seed = seed;
    cfg.recipe_scale = scale;
    cfg
}

proptest! {
    // World generation is comparatively expensive; keep case counts low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_region_populated_for_any_seed(seed in 0u64..1_000_000) {
        let cfg = cfg_with(seed, 0.01);
        let world = generate_world(&cfg);
        for region in Region::ALL {
            let n = world.recipes.n_region_recipes(region);
            prop_assert!(n >= cfg.min_region_recipes, "{region}: {n}");
        }
    }

    #[test]
    fn recipe_shape_invariants(seed in 0u64..1_000_000) {
        let world = generate_world(&cfg_with(seed, 0.01));
        for r in world.recipes.recipes() {
            prop_assert!(r.size() >= 2, "{} too small", r.name);
            prop_assert!(r.size() <= 30, "{} too large", r.name);
            // All ingredient ids live in the flavor DB.
            for &ing in r.ingredients() {
                prop_assert!(world.flavor.ingredient(ing).is_ok());
            }
        }
    }

    #[test]
    fn scaling_monotone_in_recipe_scale(seed in 0u64..1_000) {
        let small = generate_world(&cfg_with(seed, 0.01));
        let bigger = generate_world(&cfg_with(seed, 0.03));
        prop_assert!(bigger.recipes.n_recipes() >= small.recipes.n_recipes());
    }

    #[test]
    fn region_streams_are_independent(seed in 0u64..1_000) {
        // Regenerating with the same seed yields identical per-region
        // recipes regardless of the other regions (streams derive from
        // (seed, region code) only).
        let a = generate_world(&cfg_with(seed, 0.01));
        let b = generate_world(&cfg_with(seed, 0.01));
        for region in [Region::Italy, Region::Korea, Region::Usa] {
            let ra: Vec<_> = a.recipes.cuisine(region).recipes().iter().map(|r| r.ingredients().to_vec()).collect();
            let rb: Vec<_> = b.recipes.cuisine(region).recipes().iter().map(|r| r.ingredients().to_vec()).collect();
            prop_assert_eq!(ra, rb);
        }
    }
}

#[test]
fn pairing_regimes_hold_across_seeds() {
    // Aggregate check over a handful of seeds: the mean within-recipe
    // overlap of a positive region exceeds that of a negative region in
    // (nearly) every seed.
    let mut wins = 0;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let world = generate_world(&cfg_with(seed, 0.02));
        let score = |region: Region| -> f64 {
            let cuisine = world.recipes.cuisine(region);
            let mut total = 0.0;
            let mut n = 0usize;
            for r in cuisine.recipes() {
                let ings = r.ingredients();
                for i in 0..ings.len() {
                    for j in (i + 1)..ings.len() {
                        let a = &world.flavor.ingredient(ings[i]).expect("live").profile;
                        let b = &world.flavor.ingredient(ings[j]).expect("live").profile;
                        total += a.shared_count(b) as f64;
                        n += 1;
                    }
                }
            }
            total / n as f64
        };
        if score(Region::Italy) > score(Region::Scandinavia) {
            wins += 1;
        }
    }
    assert!(wins >= 4, "pairing regime held in only {wins}/5 seeds");
}
