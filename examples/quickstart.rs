//! Quickstart: generate a world, score a cuisine, compare it against a
//! randomized null, and print the verdict.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use culinaria::analysis::z_analysis::analyze_cuisine;
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::recipedb::Region;

fn main() {
    // A small world: every region present, ~4.5k recipes (10% scale).
    let world = generate_world(&WorldConfig::small());
    println!(
        "world: {} recipes across {} regions, {} ingredients",
        world.recipes.n_recipes(),
        world.recipes.regions().len(),
        world.flavor.n_ingredients()
    );

    // Analyze two cuisines with opposite pairing regimes.
    let mc = MonteCarloConfig::quick(20_000);
    for region in [Region::Italy, Region::Japan] {
        let cuisine = world.recipes.cuisine(region);
        let analysis = analyze_cuisine(
            &world.flavor,
            &cuisine,
            &[NullModel::Random, NullModel::Frequency],
            &mc,
        )
        .expect("populated cuisine");
        println!(
            "\n{} ({} recipes, {} ingredients)",
            region.name(),
            analysis.n_recipes,
            analysis.n_ingredients
        );
        println!(
            "  observed mean flavor sharing <Ns> = {:.3}",
            analysis.observed_mean
        );
        for c in &analysis.comparisons {
            println!(
                "  vs {:22} null mean {:.3}  ->  z = {:+.1}",
                c.model.name(),
                c.null.mean,
                c.z.unwrap_or(f64::NAN)
            );
        }
        println!("  verdict: {} food pairing", analysis.verdict());
    }
}
