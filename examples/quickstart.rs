//! Quickstart: open a world, score a cuisine, compare it against a
//! randomized null, and print the verdict.
//!
//! Opens the zero-copy CFDB2/CRDB2 artifacts when a data directory
//! holds them (`culinaria generate` / `culinaria migrate-artifact`
//! write `flavor.cfdb2` + `recipes.crdb2`), falls back to the CFDB1/
//! CRDB1 snapshots, and generates a fresh world when neither is on
//! disk. All three paths produce bit-identical analyses.
//!
//! ```sh
//! cargo run --release --example quickstart            # generates
//! cargo run --release -- generate --out culinaria-data
//! cargo run --release --example quickstart            # opens artifacts
//! ```

use std::path::Path;

use culinaria::analysis::z_analysis::analyze_cuisine_view;
use culinaria::analysis::{CuisineView, FlavorViewRef, MonteCarloConfig, NullModel};
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::flavordb::{artifact as flavor_artifact, AlignedBytes};
use culinaria::recipedb::{artifact as recipe_artifact, Region};

fn report(flavor: FlavorViewRef<'_>, cuisine: &CuisineView<'_>, mc: &MonteCarloConfig) {
    let region = cuisine.region();
    let analysis = analyze_cuisine_view(
        flavor,
        cuisine,
        &[NullModel::Random, NullModel::Frequency],
        mc,
    )
    .expect("populated cuisine");
    println!(
        "\n{} ({} recipes, {} ingredients)",
        region.name(),
        analysis.n_recipes,
        analysis.n_ingredients
    );
    println!(
        "  observed mean flavor sharing <Ns> = {:.3}",
        analysis.observed_mean
    );
    for c in &analysis.comparisons {
        println!(
            "  vs {:22} null mean {:.3}  ->  z = {:+.1}",
            c.model.name(),
            c.null.mean,
            c.z.unwrap_or(f64::NAN)
        );
    }
    println!("  verdict: {} food pairing", analysis.verdict());
}

fn main() {
    let dir = std::env::var("CULINARIA_DATA").unwrap_or_else(|_| "culinaria-data".to_string());
    let dir = Path::new(&dir);
    let mc = MonteCarloConfig::quick(20_000);
    let regions = [Region::Italy, Region::Japan];

    // Zero-copy path: validate the artifacts once, borrow everything.
    if let (Ok(fbuf), Ok(rbuf)) = (
        AlignedBytes::read_file(dir.join("flavor.cfdb2")),
        AlignedBytes::read_file(dir.join("recipes.crdb2")),
    ) {
        match (
            flavor_artifact::open(fbuf.as_slice()),
            recipe_artifact::open(rbuf.as_slice()),
        ) {
            (Ok(flavor), Ok(recipes)) => {
                println!(
                    "world (zero-copy artifacts in {}): {} recipes across {} regions, \
                     {} ingredients",
                    dir.display(),
                    recipes.n_recipes(),
                    recipes.regions().len(),
                    flavor.n_ingredients()
                );
                for region in regions {
                    let cuisine = CuisineView::from(recipes.cuisine(region));
                    report(FlavorViewRef::Artifact(&flavor), &cuisine, &mc);
                }
                return;
            }
            (f, r) => {
                for err in [f.err(), r.err()].into_iter().flatten() {
                    eprintln!("ignoring v2 artifact: {err}");
                }
            }
        }
    }

    // Owned fallback: parse the v1 snapshots, or generate a small
    // world (every region present, ~4.5k recipes at 10% scale).
    let world = match (
        std::fs::read(dir.join("flavor.cfdb")),
        std::fs::read(dir.join("recipes.crdb")),
    ) {
        (Ok(f), Ok(r)) => {
            let flavor = culinaria::flavordb::io::from_snapshot(bytes::Bytes::from(f))
                .expect("valid CFDB1 snapshot");
            let recipes = culinaria::recipedb::io::from_snapshot(bytes::Bytes::from(r))
                .expect("valid CRDB1 snapshot");
            println!("world (v1 snapshots in {}):", dir.display());
            culinaria::datagen::World { flavor, recipes }
        }
        _ => generate_world(&WorldConfig::small()),
    };
    println!(
        "world: {} recipes across {} regions, {} ingredients",
        world.recipes.n_recipes(),
        world.recipes.regions().len(),
        world.flavor.n_ingredients()
    );
    for region in regions {
        let cuisine = CuisineView::from(world.recipes.cuisine(region));
        report(FlavorViewRef::Owned(&world.flavor), &cuisine, &mc);
    }
}
