//! The full text-to-analysis pipeline on real-looking recipes: free-text
//! ingredient lines → aliasing NLP → flavor-database ids → pairing
//! score — exactly the paper's Fig 1 flow, using the curated fixture
//! that embeds every ingredient the paper names.
//!
//! ```sh
//! cargo run --release --example recipe_import
//! ```

use culinaria::analysis::pairing::recipe_pairing_score;
use culinaria::analysis::taste::recipe_taste;
use culinaria::flavordb::curated::curated_db;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{RecipeStore, Region, Source};

fn raw(name: &str, region: Region, lines: &[&str]) -> RawRecipe {
    RawRecipe {
        name: name.to_owned(),
        region,
        source: Source::Epicurious,
        ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
    }
}

fn main() {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();

    let recipes = vec![
        raw(
            "marinara sauce",
            Region::Italy,
            &[
                "3 ripe tomatoes, peeled and finely chopped",
                "2 cloves garlic, minced",
                "2 tbsp extra-virgin olive-oil",
                "fresh basil leaves, torn",
                "a pinch of dried oregano",
            ],
        ),
        raw(
            "masala chai spice mix",
            Region::IndianSubcontinent,
            &[
                "4 cardamom pods, crushed",
                "1 cinnamon stick",
                "2 cloves",
                "1 inch ginger, grated",
                "a pinch of hing", // synonym of asafoetida
            ],
        ),
        raw(
            "smoky highball",
            Region::Usa,
            &[
                "2 oz whisky", // spelling variant of whiskey
                "1 dash liquid smoke",
                "lemon juice to taste",
            ],
        ),
        raw(
            "mystery dish",
            Region::Usa,
            &["2 cups flambotzium crystals"], // resolves to nothing
        ),
    ];

    let stats = importer
        .import(&db, &mut store, &recipes)
        .expect("import never fails structurally");

    println!(
        "import: {}/{} recipes stored, {} dropped",
        stats.stored, stats.offered, stats.dropped
    );
    println!(
        "lines: {} resolved, {} unresolved",
        stats.lines_resolved, stats.lines_unresolved
    );
    println!(
        "unresolved tokens flagged for curation: {:?}",
        stats.unresolved_tokens
    );

    println!("\nimported recipes:");
    for recipe in store.recipes() {
        let names: Vec<&str> = recipe
            .ingredients()
            .iter()
            .map(|&id| db.ingredient(id).expect("live id").name.as_str())
            .collect();
        let ns = recipe_pairing_score(&db, recipe.ingredients());
        // "Could it be possible to enumerate the taste of a recipe?"
        let taste = recipe_taste(&db, recipe.ingredients());
        let dominant: Vec<String> = taste
            .dominant(3)
            .into_iter()
            .map(|(d, s)| format!("{d} {:.0}%", s * 100.0))
            .collect();
        println!(
            "  {:22} [{}]  Ns = {:.2}  ({})",
            recipe.name,
            recipe.region.code(),
            ns,
            names.join(", ")
        );
        println!("    taste: {}", dominant.join(", "));
    }
}
