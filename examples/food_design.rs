//! Food design end to end — the applications the paper's abstract
//! promises: "food design, generating novel flavor pairings and
//! tweaking recipes". Combines the recipe generator, the taste
//! enumerator, and the quantity-weighted pairing score on the curated
//! (fully annotated) database.
//!
//! ```sh
//! cargo run --release --example food_design
//! ```

use culinaria::analysis::generation::{Objective, RecipeGenerator};
use culinaria::analysis::pairing::weighted_recipe_pairing_score;
use culinaria::analysis::taste::recipe_taste;
use culinaria::flavordb::curated::curated_db;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{RecipeStore, Region, Source};

fn main() {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();

    // Seed a small curated cuisine from free text.
    let corpus = [
        (
            "marinara",
            vec!["3 tomatoes", "2 cloves garlic", "2 tbsp olive oil", "basil"],
        ),
        (
            "caprese",
            vec!["2 tomatoes", "cheese", "basil", "olive oil"],
        ),
        (
            "herb roast",
            vec!["1 pound chicken", "rosemary", "thyme", "olive oil", "lemon"],
        ),
        (
            "risotto",
            vec!["1 cup rice", "butter", "cheese", "wine", "onion"],
        ),
        (
            "panzanella",
            vec!["bread", "tomatoes", "olive oil", "basil", "onion"],
        ),
        ("granita", vec!["lemon juice", "sugar", "mint"]),
    ];
    let raw: Vec<RawRecipe> = corpus
        .iter()
        .map(|(name, lines)| RawRecipe {
            name: (*name).to_owned(),
            region: Region::Italy,
            source: Source::Epicurious,
            ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
        })
        .collect();
    importer
        .import(&db, &mut store, &raw)
        .expect("import succeeds");
    let cuisine = store.cuisine(Region::Italy);

    // 1. Generate a novel recipe that maximizes flavor sharing.
    let generator = RecipeGenerator::new(&db, &cuisine, usize::MAX);
    let novel = generator
        .generate_recipe(5, Objective::MaximizeSharing, 0)
        .expect("pool is large enough");
    let names: Vec<&str> = novel
        .ingredients
        .iter()
        .map(|&i| generator.name(i))
        .collect();
    println!("generated recipe (maximize sharing, Ns = {:.2}):", novel.ns);
    println!("  {}", names.join(", "));
    let taste = recipe_taste(&db, &novel.ingredients);
    let dominant: Vec<String> = taste
        .dominant(4)
        .into_iter()
        .map(|(d, s)| format!("{d} {:.0}%", s * 100.0))
        .collect();
    println!("  predicted taste: {}", dominant.join(", "));

    // 2. Tweak an existing recipe toward stronger pairing.
    let marinara = store.recipes().next().expect("imported recipes exist");
    println!("\ntweaking '{}' toward stronger pairing:", marinara.name);
    match generator.suggest_swap(marinara.ingredients(), Objective::MaximizeSharing) {
        Some((improved, removed, added)) => {
            println!(
                "  swap {} -> {}  (Ns {:.2} -> {:.2})",
                db.ingredient(removed).expect("live id").name,
                db.ingredient(added).expect("live id").name,
                culinaria::analysis::pairing::recipe_pairing_score(&db, marinara.ingredients()),
                improved.ns
            );
        }
        None => println!("  already optimal within the cuisine pool"),
    }

    // 3. Quantity-aware scoring: the same recipe, balanced vs
    //    condiment-dominated amounts.
    let (weighted, _) = importer.resolve_line_weighted(&db, "400g tomato");
    let mut amounts = weighted;
    for line in ["10g garlic", "30 ml olive oil", "5g basil"] {
        let (more, _) = importer.resolve_line_weighted(&db, line);
        amounts.extend(more);
    }
    let w = weighted_recipe_pairing_score(&db, &amounts);
    let flat: Vec<_> = amounts.iter().map(|&(id, _)| (id, 1.0)).collect();
    let u = weighted_recipe_pairing_score(&db, &flat);
    println!("\nquantity-aware marinara: weighted Ns {w:.2} vs unweighted {u:.2}");
    println!("(tomato dominates by mass, so pairs involving tomato dominate the score)");
}
