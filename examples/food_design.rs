//! Food design end to end — the applications the paper's abstract
//! promises: "food design, generating novel flavor pairings and
//! tweaking recipes". Combines the recipe generator, the taste
//! enumerator, and the quantity-weighted pairing score.
//!
//! Artifact-first like `quickstart`: opens the zero-copy CFDB2/CRDB2
//! artifacts when the data directory holds them (materialized into
//! owned databases — the round-trip is lossless, so the numbers are
//! identical to the v1-snapshot path over the same world), falls back
//! to the CFDB1/CRDB1 snapshots, and otherwise seeds a small curated
//! cuisine from free text (the fully annotated database, so the taste
//! step has descriptors to enumerate).
//!
//! ```sh
//! cargo run --release --example food_design
//! ```

use std::path::Path;

use culinaria::analysis::generation::{Objective, RecipeGenerator};
use culinaria::analysis::pairing::weighted_recipe_pairing_score;
use culinaria::analysis::taste::recipe_taste;
use culinaria::datagen::World;
use culinaria::flavordb::curated::curated_db;
use culinaria::flavordb::{artifact as flavor_artifact, AlignedBytes};
use culinaria::recipedb::artifact as recipe_artifact;
use culinaria::recipedb::import::{Importer, RawRecipe};
use culinaria::recipedb::{RecipeStore, Region, Source};

/// Curated fallback: a small Italian cuisine imported from free text
/// against the fully annotated curated flavor database.
fn curated_world() -> World {
    let db = curated_db();
    let importer = Importer::from_flavor_db(&db);
    let mut store = RecipeStore::new();
    let corpus = [
        (
            "marinara",
            vec!["3 tomatoes", "2 cloves garlic", "2 tbsp olive oil", "basil"],
        ),
        (
            "caprese",
            vec!["2 tomatoes", "cheese", "basil", "olive oil"],
        ),
        (
            "herb roast",
            vec!["1 pound chicken", "rosemary", "thyme", "olive oil", "lemon"],
        ),
        (
            "risotto",
            vec!["1 cup rice", "butter", "cheese", "wine", "onion"],
        ),
        (
            "panzanella",
            vec!["bread", "tomatoes", "olive oil", "basil", "onion"],
        ),
        ("granita", vec!["lemon juice", "sugar", "mint"]),
    ];
    let raw: Vec<RawRecipe> = corpus
        .iter()
        .map(|(name, lines)| RawRecipe {
            name: (*name).to_owned(),
            region: Region::Italy,
            source: Source::Epicurious,
            ingredient_lines: lines.iter().map(|s| s.to_string()).collect(),
        })
        .collect();
    importer
        .import(&db, &mut store, &raw)
        .expect("import succeeds");
    World {
        flavor: db,
        recipes: store,
    }
}

/// Three-tier world loading: v2 artifacts → v1 snapshots → curated
/// corpus. The design pipeline below runs unchanged over any of them.
fn load_world(dir: &Path) -> (World, String) {
    if let (Ok(fbuf), Ok(rbuf)) = (
        AlignedBytes::read_file(dir.join("flavor.cfdb2")),
        AlignedBytes::read_file(dir.join("recipes.crdb2")),
    ) {
        let opened = flavor_artifact::open(fbuf.as_slice())
            .map_err(|e| e.to_string())
            .and_then(|f| {
                let r = recipe_artifact::open(rbuf.as_slice()).map_err(|e| e.to_string())?;
                Ok((
                    f.to_flavor_db().map_err(|e| e.to_string())?,
                    r.to_recipe_store().map_err(|e| e.to_string())?,
                ))
            });
        match opened {
            Ok((flavor, recipes)) => {
                return (
                    World { flavor, recipes },
                    format!("v2 artifacts in {}", dir.display()),
                );
            }
            Err(e) => eprintln!("ignoring v2 artifacts: {e}"),
        }
    }
    if let (Ok(f), Ok(r)) = (
        std::fs::read(dir.join("flavor.cfdb")),
        std::fs::read(dir.join("recipes.crdb")),
    ) {
        let flavor = culinaria::flavordb::io::from_snapshot(bytes::Bytes::from(f))
            .expect("valid CFDB1 snapshot");
        let recipes = culinaria::recipedb::io::from_snapshot(bytes::Bytes::from(r))
            .expect("valid CRDB1 snapshot");
        return (
            World { flavor, recipes },
            format!("v1 snapshots in {}", dir.display()),
        );
    }
    (
        curated_world(),
        "curated corpus (free-text import)".to_owned(),
    )
}

fn main() {
    let dir = std::env::var("CULINARIA_DATA").unwrap_or_else(|_| "culinaria-data".to_string());
    let (world, source) = load_world(Path::new(&dir));
    println!("world: {source}");
    let cuisine = world.recipes.cuisine(Region::Italy);
    assert!(
        cuisine.n_recipes() > 0,
        "the Italian cuisine is empty — regenerate the dataset"
    );

    // 1. Generate a novel recipe that maximizes flavor sharing.
    let generator = RecipeGenerator::new(&world.flavor, &cuisine, usize::MAX);
    let novel = generator
        .generate_recipe(5, Objective::MaximizeSharing, 0)
        .expect("pool is large enough");
    let names: Vec<&str> = novel
        .ingredients
        .iter()
        .map(|&i| generator.name(i))
        .collect();
    println!("generated recipe (maximize sharing, Ns = {:.2}):", novel.ns);
    println!("  {}", names.join(", "));
    let taste = recipe_taste(&world.flavor, &novel.ingredients);
    let dominant: Vec<String> = taste
        .dominant(4)
        .into_iter()
        .map(|(d, s)| format!("{d} {:.0}%", s * 100.0))
        .collect();
    if dominant.is_empty() {
        // Generated worlds carry no taste annotations; only the
        // curated database can predict a taste profile.
        println!("  predicted taste: (no taste descriptors in this world)");
    } else {
        println!("  predicted taste: {}", dominant.join(", "));
    }

    // 2. Tweak an existing recipe toward stronger pairing.
    let target = cuisine.recipes()[0];
    println!("\ntweaking '{}' toward stronger pairing:", target.name);
    match generator.suggest_swap(target.ingredients(), Objective::MaximizeSharing) {
        Some((improved, removed, added)) => {
            println!(
                "  swap {} -> {}  (Ns {:.2} -> {:.2})",
                world.flavor.ingredient(removed).expect("live id").name,
                world.flavor.ingredient(added).expect("live id").name,
                culinaria::analysis::pairing::recipe_pairing_score(
                    &world.flavor,
                    target.ingredients()
                ),
                improved.ns
            );
        }
        None => println!("  already optimal within the cuisine pool"),
    }

    // 3. Quantity-aware scoring: the same recipe, dominated by its
    //    first ingredient vs balanced amounts. Weights come from a
    //    fixed schedule so the demo is identical on every data path.
    let ids = target.ingredients();
    let schedule = [400.0, 30.0, 10.0, 5.0];
    let amounts: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, schedule.get(i).copied().unwrap_or(5.0)))
        .collect();
    let w = weighted_recipe_pairing_score(&world.flavor, &amounts);
    let flat: Vec<_> = ids.iter().map(|&id| (id, 1.0)).collect();
    let u = weighted_recipe_pairing_score(&world.flavor, &flat);
    println!(
        "\nquantity-aware '{}': weighted Ns {w:.2} vs unweighted {u:.2}",
        target.name
    );
    println!("(the first ingredient dominates by mass, so its pairs dominate the score)");
}
