//! Food-design application the paper motivates: generate *novel flavor
//! pairings* — ingredient pairs with high flavor-compound overlap that
//! a cuisine rarely uses together — and suggest recipe tweaks.
//!
//! For a chosen cuisine, every ingredient pair is scored by
//! `overlap / (1 + co-occurrence)`: high overlap (the food-pairing
//! hypothesis says they should taste well together) but low observed
//! co-usage (so the pairing is actually novel for that cuisine).
//!
//! ```sh
//! cargo run --release --example novel_pairings
//! ```

use culinaria::analysis::pairing::OverlapCache;
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::recipedb::Region;

fn main() {
    let world = generate_world(&WorldConfig::small());
    let region = Region::Italy;
    let cuisine = world.recipes.cuisine(region);
    let cache = OverlapCache::for_cuisine(&world.flavor, &cuisine);
    let pool = cache.pool().to_vec();

    println!(
        "novel pairing candidates for {} ({} ingredients, {} recipes)\n",
        region.name(),
        pool.len(),
        cuisine.n_recipes()
    );

    let mut candidates: Vec<(f64, usize, usize, usize, usize)> = Vec::new();
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            let overlap = cache.overlap(i as u32, j as u32) as usize;
            if overlap == 0 {
                continue;
            }
            let cooc = world.recipes.cooccurrence(pool[i], pool[j]);
            let novelty = overlap as f64 / (1.0 + cooc as f64);
            candidates.push((novelty, overlap, cooc, i, j));
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!("{:>8} {:>8} {:>6}   pair", "novelty", "overlap", "cooc");
    for &(novelty, overlap, cooc, i, j) in candidates.iter().take(15) {
        let a = &world.flavor.ingredient(pool[i]).expect("live id").name;
        let b = &world.flavor.ingredient(pool[j]).expect("live id").name;
        println!("{novelty:>8.1} {overlap:>8} {cooc:>6}   {a} + {b}");
    }

    // The flip side: the cuisine's signature pairings (high overlap AND
    // high co-occurrence) — its culinary fingerprint.
    candidates.sort_by_key(|&(_, overlap, cooc, _, _)| std::cmp::Reverse(overlap * cooc));
    println!("\nsignature pairings (culinary fingerprint):");
    for &(_, overlap, cooc, i, j) in candidates.iter().take(5) {
        let a = &world.flavor.ingredient(pool[i]).expect("live id").name;
        let b = &world.flavor.ingredient(pool[j]).expect("live id").name;
        println!("  {a} + {b}  (overlap {overlap}, used together {cooc}×)");
    }
}
