//! Food-design application the paper motivates: generate *novel flavor
//! pairings* — ingredient pairs with high flavor-compound overlap that
//! a cuisine rarely uses together — and suggest recipe tweaks.
//!
//! For a chosen cuisine, every ingredient pair is scored by
//! `overlap / (1 + co-occurrence)`: high overlap (the food-pairing
//! hypothesis says they should taste well together) but low observed
//! co-usage (so the pairing is actually novel for that cuisine).
//!
//! Opens the zero-copy CFDB2/CRDB2 artifacts when a data directory
//! holds them — reusing the artifact's precomputed overlap-triangle
//! section for the region when `culinaria migrate-artifact` attached
//! one — and falls back to generating a small world otherwise.
//!
//! ```sh
//! cargo run --release --example novel_pairings
//! ```

use std::collections::HashMap;
use std::path::Path;

use culinaria::analysis::pairing::OverlapCache;
use culinaria::analysis::{CuisineView, FlavorViewRef};
use culinaria::datagen::{generate_world, WorldConfig};
use culinaria::flavordb::{artifact as flavor_artifact, AlignedBytes, IngredientId};
use culinaria::obs::Metrics;
use culinaria::recipedb::{artifact as recipe_artifact, RecipeId, Region};

/// Upper-triangle index for `i < j` over an `n`-wide pool.
fn tri_index(n: usize, i: usize, j: usize) -> usize {
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Store-wide co-occurrence counts for every pool pair, as one pass
/// over all recipe ingredient lists (works for both representations —
/// no inverted index required).
fn cooc_triangle<'r>(
    pool: &[IngredientId],
    recipes: impl Iterator<Item = &'r [IngredientId]>,
) -> Vec<u64> {
    let pos: HashMap<IngredientId, usize> =
        pool.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut tri = vec![0u64; pool.len() * pool.len().saturating_sub(1) / 2];
    let mut members = Vec::new();
    for ings in recipes {
        members.clear();
        members.extend(ings.iter().filter_map(|id| pos.get(id).copied()));
        members.sort_unstable();
        for (k, &i) in members.iter().enumerate() {
            for &j in &members[k + 1..] {
                tri[tri_index(pool.len(), i, j)] += 1;
            }
        }
    }
    tri
}

/// The region's overlap cache: the artifact's precomputed section when
/// it matches the cuisine pool, a fresh kernel build otherwise.
fn overlap_cache(flavor: FlavorViewRef<'_>, region: Region, pool: &[IngredientId]) -> OverlapCache {
    match flavor.overlap_section(region.code()) {
        Some((sec_pool, tri)) if sec_pool == pool => {
            println!("(reusing the artifact's {} overlap section)", region.code());
            OverlapCache::from_parts(pool, tri.to_vec()).expect("section triangle shape")
        }
        _ => OverlapCache::try_build_view_observed(flavor, pool, 0, &Metrics::disabled())
            .expect("usable pool"),
    }
}

fn run(flavor: FlavorViewRef<'_>, cuisine: &CuisineView<'_>, cooc: &[u64]) {
    let region = cuisine.region();
    let pool = cuisine.ingredient_set();
    let cache = overlap_cache(flavor, region, &pool);

    println!(
        "novel pairing candidates for {} ({} ingredients, {} recipes)\n",
        region.name(),
        pool.len(),
        cuisine.n_recipes()
    );

    let mut candidates: Vec<(f64, usize, u64, usize, usize)> = Vec::new();
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            let overlap = cache.overlap(i as u32, j as u32) as usize;
            if overlap == 0 {
                continue;
            }
            let cooc = cooc[tri_index(pool.len(), i, j)];
            let novelty = overlap as f64 / (1.0 + cooc as f64);
            candidates.push((novelty, overlap, cooc, i, j));
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));

    let name = |idx: usize| flavor.ingredient_name(pool[idx]).expect("live id");
    println!("{:>8} {:>8} {:>6}   pair", "novelty", "overlap", "cooc");
    for &(novelty, overlap, cooc, i, j) in candidates.iter().take(15) {
        println!(
            "{novelty:>8.1} {overlap:>8} {cooc:>6}   {} + {}",
            name(i),
            name(j)
        );
    }

    // The flip side: the cuisine's signature pairings (high overlap AND
    // high co-occurrence) — its culinary fingerprint.
    candidates.sort_by_key(|&(_, overlap, cooc, _, _)| std::cmp::Reverse(overlap as u64 * cooc));
    println!("\nsignature pairings (culinary fingerprint):");
    for &(_, overlap, cooc, i, j) in candidates.iter().take(5) {
        println!(
            "  {} + {}  (overlap {overlap}, used together {cooc}×)",
            name(i),
            name(j)
        );
    }
}

fn main() {
    let dir = std::env::var("CULINARIA_DATA").unwrap_or_else(|_| "culinaria-data".to_string());
    let dir = Path::new(&dir);
    let region = Region::Italy;

    // Zero-copy path: validate once, borrow everything.
    if let (Ok(fbuf), Ok(rbuf)) = (
        AlignedBytes::read_file(dir.join("flavor.cfdb2")),
        AlignedBytes::read_file(dir.join("recipes.crdb2")),
    ) {
        if let (Ok(flavor), Ok(recipes)) = (
            flavor_artifact::open(fbuf.as_slice()),
            recipe_artifact::open(rbuf.as_slice()),
        ) {
            println!("opened zero-copy artifacts in {}", dir.display());
            let cuisine = CuisineView::from(recipes.cuisine(region));
            let cooc = cooc_triangle(
                &cuisine.ingredient_set(),
                (0..recipes.n_recipes())
                    .filter_map(|i| recipes.recipe_ingredients(RecipeId(i as u32))),
            );
            run(FlavorViewRef::Artifact(&flavor), &cuisine, &cooc);
            return;
        }
    }

    let world = generate_world(&WorldConfig::small());
    let cuisine = CuisineView::from(world.recipes.cuisine(region));
    let cooc = cooc_triangle(
        &cuisine.ingredient_set(),
        world.recipes.recipes().map(|r| r.ingredients()),
    );
    run(FlavorViewRef::Owned(&world.flavor), &cuisine, &cooc);
}
