//! A complete per-cuisine analytical report — the multi-level
//! investigation of Fig 1 for one region: composition, size statistics,
//! popularity scaling, pairing z-scores, and key ingredients.
//!
//! Artifact-first like `quickstart`: opens the zero-copy CFDB2/CRDB2
//! artifacts when the data directory holds them (materializing owned
//! databases — the round-trip is lossless, so every number below is
//! identical to the snapshot and generate paths over the same world),
//! falls back to the CFDB1/CRDB1 snapshots, and generates a fresh
//! world when neither is on disk.
//!
//! ```sh
//! cargo run --release --example cuisine_report -- INSC
//! ```
//! (any Table 1 region code or name; defaults to INSC)

use std::path::Path;

use culinaria::analysis::composition::category_shares;
use culinaria::analysis::contribution::top_contributors;
use culinaria::analysis::popularity::popularity_profile;
use culinaria::analysis::size_dist::size_histogram;
use culinaria::analysis::z_analysis::analyze_cuisine;
use culinaria::analysis::{MonteCarloConfig, NullModel};
use culinaria::datagen::{generate_world, World, WorldConfig};
use culinaria::flavordb::{artifact as flavor_artifact, AlignedBytes, Category};
use culinaria::recipedb::{artifact as recipe_artifact, Region};

/// Three-tier world loading: v2 artifacts → v1 snapshots → generated.
/// Artifacts are materialized into owned databases so the report
/// pipeline below runs unchanged — and prints unchanged numbers —
/// whatever the source.
fn load_world(dir: &Path) -> (World, String) {
    if let (Ok(fbuf), Ok(rbuf)) = (
        AlignedBytes::read_file(dir.join("flavor.cfdb2")),
        AlignedBytes::read_file(dir.join("recipes.crdb2")),
    ) {
        let opened = flavor_artifact::open(fbuf.as_slice())
            .map_err(|e| e.to_string())
            .and_then(|f| {
                let r = recipe_artifact::open(rbuf.as_slice()).map_err(|e| e.to_string())?;
                Ok((
                    f.to_flavor_db().map_err(|e| e.to_string())?,
                    r.to_recipe_store().map_err(|e| e.to_string())?,
                ))
            });
        match opened {
            Ok((flavor, recipes)) => {
                return (
                    World { flavor, recipes },
                    format!("v2 artifacts in {}", dir.display()),
                );
            }
            Err(e) => eprintln!("ignoring v2 artifacts: {e}"),
        }
    }
    if let (Ok(f), Ok(r)) = (
        std::fs::read(dir.join("flavor.cfdb")),
        std::fs::read(dir.join("recipes.crdb")),
    ) {
        let flavor = culinaria::flavordb::io::from_snapshot(bytes::Bytes::from(f))
            .expect("valid CFDB1 snapshot");
        let recipes = culinaria::recipedb::io::from_snapshot(bytes::Bytes::from(r))
            .expect("valid CRDB1 snapshot");
        return (
            World { flavor, recipes },
            format!("v1 snapshots in {}", dir.display()),
        );
    }
    (
        generate_world(&WorldConfig::small()),
        "generated, WorldConfig::small()".to_owned(),
    )
}

fn main() {
    let region: Region = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(Region::IndianSubcontinent);

    let dir = std::env::var("CULINARIA_DATA").unwrap_or_else(|_| "culinaria-data".to_string());
    let (world, source) = load_world(Path::new(&dir));
    println!("world: {source}");
    let cuisine = world.recipes.cuisine(region);

    println!("===== {} ({}) =====", region.name(), region.code());
    println!(
        "{} recipes, {} distinct ingredients",
        cuisine.n_recipes(),
        cuisine.ingredient_set().len()
    );

    // Level 1: recipes — size statistics.
    let sizes = size_histogram(&cuisine);
    println!(
        "\nrecipe sizes: mean {:.2}, mode {}, range {}..{}",
        sizes.mean().expect("populated cuisine"),
        sizes.mode().expect("populated cuisine"),
        sizes.min().expect("populated cuisine"),
        sizes.max().expect("populated cuisine"),
    );

    // Level 2: ingredients — composition and popularity.
    let shares = category_shares(&world.flavor, &cuisine);
    let mut ranked: Vec<(Category, f64)> = Category::ALL
        .iter()
        .map(|&c| (c, shares[c.index()]))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop categories by usage share:");
    for (cat, share) in ranked.iter().take(5) {
        println!("  {:20} {:.1}%", cat.name(), share * 100.0);
    }

    let pop = popularity_profile(&cuisine);
    println!(
        "\npopularity scaling: zipf exponent {:.2}; top-10 ingredients cover {:.0}% of usage",
        pop.zipf_exponent.unwrap_or(f64::NAN),
        pop.cumulative_share.get(9).copied().unwrap_or(1.0) * 100.0
    );

    // Level 3: flavor molecules — pairing analysis.
    let analysis = analyze_cuisine(
        &world.flavor,
        &cuisine,
        &NullModel::ALL,
        &MonteCarloConfig::quick(20_000),
    )
    .expect("populated cuisine");
    println!(
        "\nfood pairing: observed <Ns> = {:.3}",
        analysis.observed_mean
    );
    for c in &analysis.comparisons {
        println!(
            "  vs {:22} z = {:+9.1}",
            c.model.name(),
            c.z.unwrap_or(f64::NAN)
        );
    }
    println!("verdict: {} food pairing", analysis.verdict());

    // Key ingredients (Fig 5 for this region).
    let positive = analysis.z_random().unwrap_or(0.0) > 0.0;
    let top = top_contributors(&world.flavor, &cuisine, 3, positive);
    println!(
        "\ntop 3 ingredients driving the {} pairing:",
        if positive { "positive" } else { "negative" }
    );
    for c in top {
        println!(
            "  {:28} {:+.2}% on removal ({} recipes)",
            c.name, c.percent_change, c.n_recipes
        );
    }
}
